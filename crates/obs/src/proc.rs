//! Process resource usage: peak RSS and user/system CPU time.
//!
//! The workspace forbids `unsafe`, so `getrusage(2)` is off the table;
//! on Linux the same numbers are exposed textually under `/proc/self`
//! (`VmHWM` in `status`, `utime`/`stime` in `stat`), which is what this
//! module reads. On other platforms every value is `None` and the run
//! artifacts simply omit the `proc.*` gauges.

/// A point-in-time (read-at-exit) resource usage sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Peak resident set size in kilobytes (`VmHWM`).
    pub max_rss_kb: Option<u64>,
    /// CPU time spent in user mode, microseconds.
    pub cpu_user_us: Option<u64>,
    /// CPU time spent in kernel mode, microseconds.
    pub cpu_sys_us: Option<u64>,
}

/// Reads the current process's usage. Any value the platform cannot
/// provide is `None`; the read itself never fails.
pub fn read() -> ProcStats {
    // Single read of /proc/self/stat: utime and stime must come from the
    // same snapshot, or the pair can straddle a scheduler tick.
    let cpu = read_cpu_times();
    ProcStats {
        max_rss_kb: read_vm_hwm(),
        cpu_user_us: cpu.map(|(u, _)| u),
        cpu_sys_us: cpu.map(|(_, s)| s),
    }
}

/// Records the sample as `proc.max_rss_kb` / `proc.cpu_user_us` /
/// `proc.cpu_sys_us` gauges in the current registry (for the `--metrics`
/// table, run-dir metrics and bench JSON). Values the platform cannot
/// provide are skipped. Uses `set_max` so repeated reads keep the peak.
pub fn record_gauges() {
    let stats = read();
    if let Some(v) = stats.max_rss_kb {
        crate::gauge("proc.max_rss_kb").set_max(v.min(i64::MAX as u64) as i64);
    }
    if let Some(v) = stats.cpu_user_us {
        crate::gauge("proc.cpu_user_us").set_max(v.min(i64::MAX as u64) as i64);
    }
    if let Some(v) = stats.cpu_sys_us {
        crate::gauge("proc.cpu_sys_us").set_max(v.min(i64::MAX as u64) as i64);
    }
}

/// Parses `VmHWM:    12345 kB` out of `/proc/self/status`.
fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Parses `(utime, stime)` in microseconds out of `/proc/self/stat`.
fn read_cpu_times() -> Option<(u64, u64)> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    parse_cpu_times(&stat)
}

fn parse_cpu_times(stat: &str) -> Option<(u64, u64)> {
    // The comm field (2nd) may contain spaces; everything after the
    // closing paren is whitespace-separated. utime/stime are fields 14
    // and 15 (1-based), i.e. indices 11 and 12 after the paren.
    let after = stat.rsplit_once(')')?.1;
    let mut fields = after.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // Both are in clock ticks of USER_HZ, which is 100 on every Linux
    // configuration that matters (the constant is part of the kernel
    // ABI exposed to userspace via /proc).
    const TICK_US: u64 = 1_000_000 / 100;
    Some((utime.saturating_mul(TICK_US), stime.saturating_mul(TICK_US)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\taxmc\nVmPeak:\t  999 kB\nVmHWM:\t   5044 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(5044));
        assert_eq!(parse_vm_hwm("Name: x\n"), None);
    }

    #[test]
    fn parses_stat_cpu_fields_past_comm_with_spaces() {
        // 52-field stat line with a hostile comm; utime=7 stime=3 ticks.
        let mut stat = String::from("1234 (a b) c) S 1 1 1 0 -1 4194560 100 0 0 0 7 3");
        for _ in 0..38 {
            stat.push_str(" 0");
        }
        assert_eq!(parse_cpu_times(&stat), Some((70_000, 30_000)));
        assert_eq!(parse_cpu_times("garbage"), None);
    }

    #[test]
    fn read_is_infallible_and_plausible() {
        let stats = read();
        // On Linux all three are present and nonzero-ish; elsewhere the
        // read degrades to None without failing.
        if let Some(rss) = stats.max_rss_kb {
            assert!(rss > 100, "peak RSS of a running test exceeds 100 kB");
        }
        if let (Some(u), Some(s)) = (stats.cpu_user_us, stats.cpu_sys_us) {
            assert!(u.checked_add(s).is_some());
        }
    }
}
