//! Hierarchical profiling: span identity, thread-local span stacks, and
//! reconstruction of the call tree from a recorded trace.
//!
//! While a trace sink is installed, every [`crate::span`] is assigned a
//! process-unique `span` id, the id of the span on top of the current
//! thread's stack as its `parent`, and a per-thread `worker` number, and
//! emits a pair of events:
//!
//! ```text
//! {"ev":"span.start","name":"bmc.check.time_us","span":7,"parent":3,"worker":0,"t_us":1042}
//! {"ev":"span.end","span":7,"t_us":2205,"dur_us":1163}
//! ```
//!
//! Worker threads spawned by `axmc-par` adopt the spawning thread's
//! current span as their stack base (see [`with_parent`]), so the
//! recorded tree is complete across `--jobs` fan-outs: a BMC frame's
//! solver calls stay under the frame, a CGP generation's candidate
//! verifications stay under the generation, whichever thread ran them.
//!
//! [`Profile::from_jsonl`] inverts the stream: it pairs starts with ends
//! (tolerating interleaved workers and unfinished spans) and yields the
//! parent/child forest that `axmc report` aggregates. With tracing off
//! none of this module's machinery runs — [`crate::span`] stays a
//! histogram-only timer, and with observability off entirely it remains
//! a no-op that never reads the clock.

use crate::event::{Event, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic process-wide span id source; 0 is reserved for "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Worker-number source; the first thread to trace gets 0.
static NEXT_WORKER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's worker number, assigned on first traced span.
    static WORKER: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The trace's time origin: the first instant any span was traced (or
/// [`epoch_us`] was called) in this process.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch.
pub fn epoch_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

fn worker_id() -> u64 {
    WORKER.with(|w| match w.get() {
        Some(id) => id,
        None => {
            let id = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
            w.set(Some(id));
            id
        }
    })
}

/// The id of the innermost span open on this thread (0 if none).
pub fn current_span_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Runs `f` with `parent` installed as the base of this thread's span
/// stack, so spans opened inside attach under it. Worker pools use this
/// to carry the spawning thread's position in the call tree across the
/// thread boundary. `parent == 0` (no span) is a plain call.
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    if parent == 0 {
        return f();
    }
    STACK.with(|s| s.borrow_mut().push(parent));
    struct PopOnExit(u64);
    impl Drop for PopOnExit {
        fn drop(&mut self) {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == self.0) {
                    stack.remove(pos);
                }
            });
        }
    }
    let _pop = PopOnExit(parent);
    f()
}

/// An open traced span: the token [`crate::Span`] holds between the
/// `span.start` and `span.end` events.
#[derive(Debug)]
pub(crate) struct ActiveSpan {
    id: u64,
}

/// Opens a traced span: assigns ids, pushes the stack, emits
/// `span.start`. Callers guard on [`crate::tracing_active`].
pub(crate) fn begin(name: &str) -> ActiveSpan {
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    let worker = worker_id();
    STACK.with(|s| s.borrow_mut().push(id));
    crate::emit(
        Event::new("span.start")
            .field("name", name)
            .field("span", id)
            .field("parent", parent)
            .field("worker", worker)
            .field("t_us", epoch_us()),
    );
    ActiveSpan { id }
}

/// Closes a traced span: pops the stack and emits `span.end`.
pub(crate) fn end(span: ActiveSpan, dur_us: u64) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&id| id == span.id) {
            stack.remove(pos);
        }
    });
    crate::emit(
        Event::new("span.end")
            .field("span", span.id)
            .field("t_us", epoch_us())
            .field("dur_us", dur_us),
    );
}

/// One reconstructed span of a recorded trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id as recorded (unique within the trace).
    pub id: u64,
    /// Id of the enclosing span, 0 for a top-level span.
    pub parent: u64,
    /// The worker (thread) number that ran the span.
    pub worker: u64,
    /// The span's histogram name (e.g. `sat.solve.time_us`).
    pub name: String,
    /// Start time in microseconds since the trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds. Spans whose `span.end` never
    /// made it into the trace (crash, truncation) are closed at the last
    /// timestamp observed anywhere in the trace.
    pub dur_us: u64,
    /// Indices (into [`Profile::spans`]) of this span's children, in
    /// (start, id) order.
    pub children: Vec<usize>,
}

/// The call forest reconstructed from one trace.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Every reconstructed span, sorted by (start, id).
    pub spans: Vec<SpanRecord>,
    /// Indices of the top-level spans (parent absent from the trace).
    pub roots: Vec<usize>,
    /// Lines/events present but not usable (non-span events are *not*
    /// counted — only malformed lines and `span.end`s without a start).
    pub skipped: usize,
}

fn field_u64(event: &Event, name: &str) -> Option<u64> {
    match event.get(name) {
        Some(Value::U64(v)) => Some(*v),
        _ => None,
    }
}

impl Profile {
    /// Reconstructs the call forest from a stream of events. Non-span
    /// events are ignored; `span.end`s without a matching start count as
    /// [`Profile::skipped`].
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Profile {
        struct Open {
            parent: u64,
            worker: u64,
            name: String,
            start_us: u64,
            dur_us: Option<u64>,
        }
        let mut order: Vec<u64> = Vec::new();
        let mut by_id: HashMap<u64, Open> = HashMap::new();
        let mut skipped = 0usize;
        let mut last_t = 0u64;
        for event in events {
            match event.kind.as_str() {
                "span.start" => {
                    let (Some(id), Some(parent), Some(t)) = (
                        field_u64(&event, "span"),
                        field_u64(&event, "parent"),
                        field_u64(&event, "t_us"),
                    ) else {
                        skipped += 1;
                        continue;
                    };
                    let name = match event.get("name") {
                        Some(Value::Str(s)) => s.clone(),
                        _ => {
                            skipped += 1;
                            continue;
                        }
                    };
                    last_t = last_t.max(t);
                    order.push(id);
                    by_id.insert(
                        id,
                        Open {
                            parent,
                            worker: field_u64(&event, "worker").unwrap_or(0),
                            name,
                            start_us: t,
                            dur_us: None,
                        },
                    );
                }
                "span.end" => {
                    let (Some(id), Some(dur)) =
                        (field_u64(&event, "span"), field_u64(&event, "dur_us"))
                    else {
                        skipped += 1;
                        continue;
                    };
                    if let Some(t) = field_u64(&event, "t_us") {
                        last_t = last_t.max(t);
                    }
                    match by_id.get_mut(&id) {
                        Some(open) => open.dur_us = Some(dur),
                        None => skipped += 1,
                    }
                }
                _ => {
                    if let Some(t) = field_u64(&event, "t_us") {
                        last_t = last_t.max(t);
                    }
                }
            }
        }
        let mut spans: Vec<SpanRecord> = order
            .iter()
            .filter_map(|id| by_id.get(id).map(|o| (*id, o)))
            .map(|(id, o)| SpanRecord {
                id,
                parent: o.parent,
                worker: o.worker,
                name: o.name.clone(),
                start_us: o.start_us,
                // An unfinished span is closed at the last trace
                // timestamp so its time is still attributed.
                dur_us: o.dur_us.unwrap_or(last_t.saturating_sub(o.start_us)),
                children: Vec::new(),
            })
            .collect();
        spans.sort_by_key(|s| (s.start_us, s.id));
        let index: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            match index.get(&span.parent) {
                // A span can never be its own ancestor with live ids, but
                // a corrupted trace could claim it; treat it as a root.
                Some(&p) if p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        for (span, kids) in spans.iter_mut().zip(children) {
            span.children = kids;
        }
        Profile {
            spans,
            roots,
            skipped,
        }
    }

    /// Reconstructs the call forest from JSONL trace text (the format
    /// `--trace` and `--run-dir` record). Unparseable lines count as
    /// [`Profile::skipped`].
    pub fn from_jsonl(text: &str) -> Profile {
        let mut skipped = 0usize;
        let events: Vec<Event> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| match Event::parse_json(l) {
                Ok(e) => Some(e),
                Err(_) => {
                    skipped += 1;
                    None
                }
            })
            .collect();
        let mut profile = Profile::from_events(events);
        profile.skipped += skipped;
        profile
    }

    /// Total wall-clock attributed to the top-level spans (µs).
    pub fn root_total_us(&self) -> u64 {
        self.roots.iter().map(|&i| self.spans[i].dur_us).sum()
    }

    /// True if the trace contained no spans at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: u64, worker: u64, name: &str, t: u64) -> Event {
        Event::new("span.start")
            .field("name", name)
            .field("span", id)
            .field("parent", parent)
            .field("worker", worker)
            .field("t_us", t)
    }

    fn end_ev(id: u64, t: u64, dur: u64) -> Event {
        Event::new("span.end")
            .field("span", id)
            .field("t_us", t)
            .field("dur_us", dur)
    }

    #[test]
    fn reconstructs_nested_tree() {
        let events = vec![
            start(1, 0, 0, "run", 0),
            start(2, 1, 0, "solve", 10),
            end_ev(2, 60, 50),
            start(3, 1, 0, "solve", 70),
            end_ev(3, 100, 30),
            end_ev(1, 120, 120),
        ];
        let p = Profile::from_events(events);
        assert_eq!(p.skipped, 0);
        assert_eq!(p.roots.len(), 1);
        let root = &p.spans[p.roots[0]];
        assert_eq!(root.name, "run");
        assert_eq!(root.dur_us, 120);
        assert_eq!(root.children.len(), 2);
        assert_eq!(p.spans[root.children[0]].name, "solve");
        assert_eq!(p.root_total_us(), 120);
    }

    #[test]
    fn interleaved_workers_attach_to_their_own_parents() {
        // Two workers interleave their events arbitrarily; parent links,
        // not event order, define the tree.
        let events = vec![
            start(1, 0, 0, "run", 0),
            start(10, 1, 1, "probe", 5),
            start(20, 1, 2, "probe", 6),
            start(11, 10, 1, "solve", 7),
            start(21, 20, 2, "solve", 8),
            end_ev(21, 40, 32),
            end_ev(11, 50, 43),
            end_ev(20, 55, 49),
            end_ev(10, 60, 55),
            end_ev(1, 70, 70),
        ];
        let p = Profile::from_events(events);
        assert_eq!(p.skipped, 0);
        assert_eq!(p.roots.len(), 1);
        let root = &p.spans[p.roots[0]];
        assert_eq!(root.children.len(), 2);
        for &c in &root.children {
            let probe = &p.spans[c];
            assert_eq!(probe.name, "probe");
            assert_eq!(probe.children.len(), 1);
            assert_eq!(p.spans[probe.children[0]].name, "solve");
            assert_eq!(p.spans[probe.children[0]].worker, probe.worker);
        }
    }

    #[test]
    fn unfinished_spans_close_at_last_timestamp() {
        let events = vec![
            start(1, 0, 0, "run", 0),
            start(2, 1, 0, "solve", 10),
            end_ev(2, 90, 80),
        ];
        let p = Profile::from_events(events);
        let root = &p.spans[p.roots[0]];
        assert_eq!(root.name, "run");
        assert_eq!(root.dur_us, 90, "closed at last observed t_us");
    }

    #[test]
    fn orphan_ends_and_foreign_events_are_tolerated() {
        let events = vec![
            Event::new("sat.solve").field("time_us", 3u64),
            end_ev(99, 10, 10),
            start(1, 0, 0, "run", 0),
            end_ev(1, 20, 20),
        ];
        let p = Profile::from_events(events);
        assert_eq!(p.spans.len(), 1);
        assert_eq!(p.skipped, 1, "the orphan end");
    }

    #[test]
    fn from_jsonl_skips_garbage_lines() {
        let text = format!(
            "{}\nnot json at all\n{}\n\n",
            start(1, 0, 0, "run", 0).to_json(),
            end_ev(1, 30, 30).to_json()
        );
        let p = Profile::from_jsonl(&text);
        assert_eq!(p.spans.len(), 1);
        assert_eq!(p.skipped, 1);
        assert_eq!(p.spans[0].dur_us, 30);
    }

    #[test]
    fn with_parent_installs_and_restores() {
        assert_eq!(current_span_id(), 0);
        let seen = with_parent(42, current_span_id);
        assert_eq!(seen, 42);
        assert_eq!(current_span_id(), 0);
        // parent 0 is a plain call
        assert_eq!(with_parent(0, current_span_id), 0);
    }
}
