//! Aggregated rendering of a reconstructed [`Profile`]: the self/total
//! wall-clock attribution tree, exact per-span-name quantile tables, and
//! collapsed-stack flamegraph lines (`inferno` / `flamegraph.pl` input).
//!
//! All three renderings are deterministic functions of the trace: spans
//! are merged by their *name path* (the chain of span names from the
//! root), children are ordered by total time descending with name as the
//! tiebreak, and flamegraph lines are sorted lexicographically — running
//! `axmc report` twice on one recording yields identical bytes.

use crate::profile::Profile;
use std::collections::BTreeMap;

/// One aggregation node: every span sharing a name path, merged.
#[derive(Clone, Debug, Default)]
pub struct AggNode {
    /// Number of spans merged into this node.
    pub count: u64,
    /// Sum of the merged spans' wall-clock durations (µs). Concurrent
    /// siblings (worker fan-outs) add up, so a subtree's total can
    /// exceed its parent's — that is CPU attribution, not elapsed time.
    pub total_us: u64,
    /// Time inside these spans not covered by any child span (µs),
    /// clamped at zero per span when concurrent children overlap.
    pub self_us: u64,
    /// Child nodes by span name.
    pub children: BTreeMap<String, AggNode>,
}

/// The attribution forest: top-level span names mapped to their merged
/// subtrees.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Top-level aggregation nodes by name.
    pub roots: BTreeMap<String, AggNode>,
}

/// Aggregates a profile's span forest by name path.
pub fn aggregate(profile: &Profile) -> Attribution {
    let mut roots = BTreeMap::new();
    for &r in &profile.roots {
        add_span(profile, r, &mut roots);
    }
    Attribution { roots }
}

fn add_span(profile: &Profile, idx: usize, level: &mut BTreeMap<String, AggNode>) {
    let span = &profile.spans[idx];
    let node = level.entry(span.name.clone()).or_default();
    node.count += 1;
    node.total_us += span.dur_us;
    let child_us: u64 = span.children.iter().map(|&c| profile.spans[c].dur_us).sum();
    node.self_us += span.dur_us.saturating_sub(child_us);
    for &c in &span.children {
        add_span(profile, c, &mut node.children);
    }
}

/// Children of a level ordered for display: total time descending, then
/// name ascending — a deterministic order independent of insertion.
fn ordered(level: &BTreeMap<String, AggNode>) -> Vec<(&String, &AggNode)> {
    let mut entries: Vec<_> = level.iter().collect();
    entries.sort_by(|(an, a), (bn, b)| b.total_us.cmp(&a.total_us).then(an.cmp(bn)));
    entries
}

fn push_tree_rows(
    level: &BTreeMap<String, AggNode>,
    depth: usize,
    grand_total: u64,
    out: &mut String,
) {
    for (name, node) in ordered(level) {
        let pct = if grand_total == 0 {
            0.0
        } else {
            node.total_us as f64 * 100.0 / grand_total as f64
        };
        out.push_str(&format!(
            "{:>12.3} {:>12.3} {:>9} {:>6.1}%  {:indent$}{name}\n",
            node.total_us as f64 / 1000.0,
            node.self_us as f64 / 1000.0,
            node.count,
            pct,
            "",
            indent = depth * 2,
        ));
        push_tree_rows(&node.children, depth + 1, grand_total, out);
    }
}

/// Renders the self/total attribution tree as an aligned table. Times
/// are milliseconds; the `%` column is relative to the root total.
pub fn render_tree(profile: &Profile) -> String {
    if profile.is_empty() {
        return "trace contains no spans\n".to_string();
    }
    let agg = aggregate(profile);
    let grand_total: u64 = agg.roots.values().map(|n| n.total_us).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12} {:>12} {:>9} {:>7}  span\n",
        "total_ms", "self_ms", "count", "total"
    ));
    push_tree_rows(&agg.roots, 0, grand_total, &mut out);
    out
}

/// Exact quantile of a **sorted** sample set: the smallest value with at
/// least `ceil(q * n)` samples at or below it.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Renders the per-span-name latency table: count, total and **exact**
/// p50/p95/p99/max from the recorded durations (unlike the log₂
/// histogram summary, a trace carries every sample exactly).
pub fn render_quantiles(profile: &Profile) -> String {
    if profile.is_empty() {
        return String::new();
    }
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for span in &profile.spans {
        by_name.entry(&span.name).or_default().push(span.dur_us);
    }
    let name_w = by_name.keys().map(|n| n.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total_ms", "p50_us", "p95_us", "p99_us", "max_us"
    ));
    for (name, mut durs) in by_name {
        durs.sort_unstable();
        let total: u64 = durs.iter().sum();
        out.push_str(&format!(
            "{name:<name_w$} {:>8} {:>12.3} {:>10} {:>10} {:>10} {:>10}\n",
            durs.len(),
            total as f64 / 1000.0,
            exact_quantile(&durs, 0.50),
            exact_quantile(&durs, 0.95),
            exact_quantile(&durs, 0.99),
            durs.last().copied().unwrap_or(0),
        ));
    }
    out
}

fn push_stacks(level: &BTreeMap<String, AggNode>, prefix: &str, out: &mut Vec<String>) {
    for (name, node) in level {
        let frame = name.replace([';', '\n'], "_");
        let path = if prefix.is_empty() {
            frame
        } else {
            format!("{prefix};{frame}")
        };
        if node.self_us > 0 {
            out.push(format!("{path} {}", node.self_us));
        }
        push_stacks(&node.children, &path, out);
    }
}

/// Renders the profile as collapsed flamegraph stacks: one
/// `root;child;leaf <self_µs>` line per name path with nonzero self
/// time, sorted lexicographically. Feed to `flamegraph.pl` or inferno.
pub fn collapsed_stacks(profile: &Profile) -> String {
    let agg = aggregate(profile);
    let mut lines = Vec::new();
    push_stacks(&agg.roots, "", &mut lines);
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn demo_profile() -> Profile {
        let start = |id: u64, parent: u64, name: &str, t: u64| {
            Event::new("span.start")
                .field("name", name)
                .field("span", id)
                .field("parent", parent)
                .field("worker", 0u64)
                .field("t_us", t)
        };
        let end = |id: u64, t: u64, dur: u64| {
            Event::new("span.end")
                .field("span", id)
                .field("t_us", t)
                .field("dur_us", dur)
        };
        Profile::from_events(vec![
            start(1, 0, "run", 0),
            start(2, 1, "bmc.check", 10),
            start(3, 2, "sat.solve", 20),
            end(3, 60, 40),
            end(2, 70, 60),
            start(4, 1, "bmc.check", 80),
            start(5, 4, "sat.solve", 85),
            end(5, 95, 10),
            end(4, 100, 20),
            end(1, 110, 110),
        ])
    }

    #[test]
    fn aggregates_by_name_path() {
        let agg = aggregate(&demo_profile());
        let run = &agg.roots["run"];
        assert_eq!(run.count, 1);
        assert_eq!(run.total_us, 110);
        assert_eq!(run.self_us, 110 - 60 - 20);
        let check = &run.children["bmc.check"];
        assert_eq!(check.count, 2);
        assert_eq!(check.total_us, 80);
        assert_eq!(check.self_us, 80 - 40 - 10);
        let solve = &check.children["sat.solve"];
        assert_eq!((solve.count, solve.total_us, solve.self_us), (2, 50, 50));
    }

    #[test]
    fn tree_renders_hierarchy_and_percentages() {
        let text = render_tree(&demo_profile());
        assert!(text.contains("run"), "{text}");
        assert!(text.contains("  bmc.check"), "{text}");
        assert!(text.contains("    sat.solve"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        // Deterministic: rendering twice gives identical bytes.
        assert_eq!(text, render_tree(&demo_profile()));
    }

    #[test]
    fn quantiles_are_exact() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile(&sorted, 0.50), 50);
        assert_eq!(exact_quantile(&sorted, 0.95), 95);
        assert_eq!(exact_quantile(&sorted, 0.99), 99);
        assert_eq!(exact_quantile(&sorted, 1.0), 100);
        assert_eq!(exact_quantile(&sorted, 0.0), 1);
        assert_eq!(exact_quantile(&[], 0.5), 0);
        let table = render_quantiles(&demo_profile());
        assert!(table.contains("sat.solve"), "{table}");
        assert!(table.contains("p95_us"), "{table}");
    }

    #[test]
    fn collapsed_stacks_are_sorted_and_self_weighted() {
        let text = collapsed_stacks(&demo_profile());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["run 30", "run;bmc.check 30", "run;bmc.check;sat.solve 50",]
        );
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 110, "self times sum to the root total");
    }

    #[test]
    fn empty_profile_renders_notice() {
        let p = Profile::default();
        assert!(render_tree(&p).contains("no spans"));
        assert_eq!(collapsed_stacks(&p), "");
        assert_eq!(render_quantiles(&p), "");
    }
}
