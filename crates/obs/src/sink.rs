//! Event sinks: where emitted [`Event`]s go.
//!
//! A [`Sink`] receives every event emitted through [`crate::emit`]. The
//! crate ships two: [`JsonlSink`], which streams events as JSON lines to
//! any writer (the `--trace FILE.jsonl` backend), and [`MemorySink`],
//! which buffers them for tests and in-process consumers.

use crate::event::Event;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A consumer of trace events. Implementations must tolerate concurrent
/// calls (`Send + Sync`).
pub trait Sink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output; called at end of run.
    fn flush(&self) {}
}

/// Streams each event as one JSON line to an arbitrary writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Hand it a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams events to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().expect("trace writer poisoned");
        // A failed trace write must not abort the analysis it observes.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("trace writer poisoned").flush();
    }
}

/// Buffers events in memory; `take()` drains them.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Removes and returns everything received so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().expect("memory sink poisoned"))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// True if nothing has been received (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Fans one event stream out to several sinks (e.g. a trace file and a
/// live progress printer at the same time).
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl TeeSink {
    /// A sink forwarding to every sink in `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&Event::new("a").field("n", 1u64));
        sink.emit(&Event::new("b").field("s", "x"));
        sink.flush();
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::parse_json(lines[0]).unwrap().kind, "a");
        assert_eq!(Event::parse_json(lines[1]).unwrap().kind, "b");
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&Event::new("x"));
        assert_eq!(sink.len(), 1);
        let taken = sink.take();
        assert_eq!(taken[0].kind, "x");
        assert!(sink.is_empty());
    }

    #[test]
    fn tee_fans_out() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.emit(&Event::new("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
