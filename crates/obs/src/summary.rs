//! Human-readable end-of-run rendering of a metrics [`Snapshot`]
//! (the `--metrics` summary table).

use crate::metrics::Snapshot;

/// Renders a snapshot as an aligned three-section table. Empty sections
/// are omitted; an entirely empty snapshot renders a one-line notice.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("metrics: no instruments recorded anything\n");
        return out;
    }

    let counters: Vec<_> = snapshot.counters.iter().filter(|(_, &v)| v > 0).collect();
    if !counters.is_empty() {
        let w = column_width(counters.iter().map(|(k, _)| k.as_str()));
        out.push_str("counters\n");
        for (name, value) in counters {
            out.push_str(&format!("  {name:<w$}  {value:>12}\n"));
        }
    }

    if !snapshot.gauges.is_empty() {
        let w = column_width(snapshot.gauges.keys().map(String::as_str));
        out.push_str("gauges\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<w$}  {value:>12}\n"));
        }
    }

    let hists: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !hists.is_empty() {
        let w = column_width(hists.iter().map(|(k, _)| k.as_str()));
        out.push_str("histograms\n");
        out.push_str(&format!(
            "  {:<w$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "name", "count", "mean", "min", "p50", "p95", "p99", "max"
        ));
        for (name, h) in hists {
            out.push_str(&format!(
                "  {name:<w$}  {:>10} {:>12.1} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                h.count,
                h.mean(),
                h.min,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max
            ));
        }
    }
    out
}

fn column_width<'a>(names: impl Iterator<Item = &'a str>) -> usize {
    names.map(str::len).max().unwrap_or(0).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_all_sections() {
        let r = Registry::new();
        r.counter("sat.solves").add(12);
        r.gauge("bmc.max_frame").set(9);
        for v in [10, 20, 400] {
            r.histogram("sat.solve.time_us").record(v);
        }
        let table = render(&r.snapshot());
        assert!(table.contains("counters"));
        assert!(table.contains("sat.solves"));
        assert!(table.contains("gauges"));
        assert!(table.contains("bmc.max_frame"));
        assert!(table.contains("histograms"));
        assert!(table.contains("sat.solve.time_us"));
        assert!(table.contains("p95"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn zero_valued_instruments_are_hidden() {
        let r = Registry::new();
        r.counter("touched.but.zero");
        r.histogram("empty.hist");
        r.counter("real").inc();
        let table = render(&r.snapshot());
        assert!(!table.contains("touched.but.zero"));
        assert!(!table.contains("empty.hist"));
        assert!(table.contains("real"));
    }

    #[test]
    fn empty_snapshot_has_notice() {
        let table = render(&Registry::new().snapshot());
        assert!(table.contains("no instruments"));
    }
}
