//! Zero-dependency parallel execution for the axmc oracle loops.
//!
//! The whole stack's hot path is SAT/BMC oracle calls — embarrassingly
//! parallel across CGP candidates and across speculative threshold
//! probes. This crate provides the shapes those loops need, built on
//! [`std::thread::scope`] only (no external crates, so the workspace
//! stays hermetic/offline):
//!
//! * [`parallel_map`] — evaluate every item of a slice on a bounded pool
//!   of workers, returning results **in item order** regardless of
//!   completion order. With `jobs <= 1` (or one item) it runs inline on
//!   the calling thread, so a serial run and a `jobs = 1` run are the
//!   same code path.
//! * [`parallel_zip_mut`] — the portfolio shape: pair each element of a
//!   mutable state slice (e.g. per-worker solver engines) with one input
//!   and run all pairs concurrently, one thread per pair.
//! * [`parallel_pair`] — the two-engine race: run exactly two
//!   heterogeneous closures concurrently and join both, used by the
//!   `--engine auto` SAT ⊕ BDD portfolio in `axmc-core`.
//!
//! Every worker runs inside [`axmc_obs::worker_scope`], so metrics
//! recorded by solver/model-checker code on worker threads aggregate
//! into the process-wide registry without hot-path lock contention.
//! Workers also adopt the spawning thread's current profiling span as
//! their stack base ([`axmc_obs::profile::with_parent`]), so when a
//! trace is recorded the spans they open stay attached to the logical
//! call site — a BMC frame's parallel solver probes appear under that
//! frame in `axmc report` regardless of `--jobs`.
//!
//! Determinism: neither function introduces any ordering dependence —
//! results are slotted by index and merged by the caller in a fixed
//! order, which is what lets `--jobs N` reproduce `--jobs 1` byte for
//! byte when each work item is itself deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of hardware threads available to this process, with a
/// fallback of 1 when the platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using at most `jobs` worker
/// threads and returns the results in item order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs — the norm for SAT calls — don't serialize on the slowest
/// worker's prefix. With `jobs <= 1` or fewer than two items the calls
/// run inline on the current thread.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated once all
/// workers have stopped).
///
/// # Examples
///
/// ```
/// let squares = axmc_par::parallel_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parent = axmc_obs::profile::current_span_id();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    axmc_obs::worker_scope(|| {
                        axmc_obs::profile::with_parent(parent, || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            let result = f(i, item);
                            *slots[i].lock().expect("result slot poisoned") = Some(result);
                        })
                    })
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs two closures concurrently on scoped worker threads and returns
/// both results.
///
/// This is the two-engine portfolio shape: `axmc-core`'s `Auto` backend
/// races its SAT and BDD engines with `parallel_pair`, each under a
/// `ResourceCtl` carrying a shared race-cancellation token, and the
/// first sound finisher raises the token to stop the loser. The function
/// itself is engine-agnostic — it only provides the join.
///
/// Both closures always run to completion (cooperative cancellation is
/// the caller's job); the join is a barrier.
///
/// # Panics
///
/// Panics if either closure panics (the panic is propagated after both
/// threads have stopped).
///
/// # Examples
///
/// ```
/// let (a, b) = axmc_par::parallel_pair(|| 6 * 7, || "done");
/// assert_eq!(a, 42);
/// assert_eq!(b, "done");
/// ```
pub fn parallel_pair<A, B, F, G>(f: F, g: G) -> (A, B)
where
    A: Send,
    B: Send,
    F: FnOnce() -> A + Send,
    G: FnOnce() -> B + Send,
{
    let parent = axmc_obs::profile::current_span_id();
    std::thread::scope(|scope| {
        let ha = scope
            .spawn(move || axmc_obs::worker_scope(|| axmc_obs::profile::with_parent(parent, f)));
        let hb = scope
            .spawn(move || axmc_obs::worker_scope(|| axmc_obs::profile::with_parent(parent, g)));
        let ra = ha.join();
        let rb = hb.join();
        match (ra, rb) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(payload), _) | (_, Err(payload)) => std::panic::resume_unwind(payload),
        }
    })
}

/// Runs `f(i, &mut states[i], &inputs[i])` for every input concurrently
/// (one thread per pair) and returns the results in input order.
///
/// This is the speculative-portfolio shape: each worker owns a mutable
/// engine (solver, unroller, …) for the duration of its probe, and the
/// caller merges the answers afterwards in a deterministic order. With
/// fewer than two inputs the calls run inline.
///
/// # Panics
///
/// Panics if `inputs` is longer than `states`, or if `f` panics.
///
/// # Examples
///
/// ```
/// let mut accumulators = vec![0u64; 3];
/// let sums = axmc_par::parallel_zip_mut(&mut accumulators, &[10u64, 20, 30], |_, acc, &x| {
///     *acc += x;
///     *acc
/// });
/// assert_eq!(sums, vec![10, 20, 30]);
/// assert_eq!(accumulators, vec![10, 20, 30]);
/// ```
pub fn parallel_zip_mut<S, I, R, F>(states: &mut [S], inputs: &[I], f: F) -> Vec<R>
where
    S: Send,
    I: Sync,
    R: Send,
    F: Fn(usize, &mut S, &I) -> R + Sync,
{
    assert!(
        inputs.len() <= states.len(),
        "portfolio needs one state per input ({} inputs, {} states)",
        inputs.len(),
        states.len()
    );
    if inputs.len() <= 1 {
        return inputs
            .iter()
            .enumerate()
            .map(|(i, input)| f(i, &mut states[i], input))
            .collect();
    }
    let parent = axmc_obs::profile::current_span_id();
    std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .zip(inputs)
            .enumerate()
            .map(|(i, (state, input))| {
                let f = &f;
                scope.spawn(move || {
                    axmc_obs::worker_scope(|| {
                        axmc_obs::profile::with_parent(parent, || f(i, state, input))
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = parallel_map(jobs, &items, |i, &x| {
                // Stagger completion so later items often finish first.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                x * 2
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn map_passes_matching_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = parallel_map(3, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = parallel_map(5, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_propagates_worker_panics() {
        parallel_map(2, &[0u32, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn pair_runs_both_closures_and_returns_both_results() {
        let left = AtomicU64::new(0);
        let right = AtomicU64::new(0);
        let (a, b) = parallel_pair(
            || {
                left.fetch_add(1, Ordering::Relaxed);
                "sat"
            },
            || {
                right.fetch_add(1, Ordering::Relaxed);
                17u64
            },
        );
        assert_eq!((a, b), ("sat", 17));
        assert_eq!(left.load(Ordering::Relaxed), 1);
        assert_eq!(right.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "pair boom")]
    fn pair_propagates_panics_from_either_side() {
        parallel_pair(|| 1u32, || panic!("pair boom"));
    }

    #[test]
    fn zip_mut_gives_each_input_its_own_state() {
        let mut states = vec![Vec::<usize>::new(), Vec::new(), Vec::new(), Vec::new()];
        let out = parallel_zip_mut(&mut states, &[4usize, 5, 6], |i, state, &x| {
            state.push(x);
            i + x
        });
        assert_eq!(out, vec![4, 6, 8]);
        assert_eq!(states[0], vec![4]);
        assert_eq!(states[1], vec![5]);
        assert_eq!(states[2], vec![6]);
        assert!(states[3].is_empty(), "unused state untouched");
    }

    #[test]
    #[should_panic(expected = "one state per input")]
    fn zip_mut_rejects_more_inputs_than_states() {
        let mut states = vec![0u32];
        parallel_zip_mut(&mut states, &[1u32, 2], |_, s, &x| *s + x);
    }

    #[test]
    fn workers_aggregate_metrics_into_global_registry() {
        // Serialized against other obs users via the registry reset; this
        // is the only test in this crate touching global obs state.
        axmc_obs::set_enabled(true);
        axmc_obs::reset();
        let items: Vec<u64> = (0..32).collect();
        parallel_map(4, &items, |_, &x| {
            axmc_obs::counter("par.test.calls").inc();
            axmc_obs::histogram("par.test.values").record(x);
        });
        let s = axmc_obs::snapshot();
        assert_eq!(s.counters["par.test.calls"], 32);
        assert_eq!(s.histograms["par.test.values"].count, 32);
        axmc_obs::set_enabled(false);
        axmc_obs::reset();
    }
}
