//! A minimal, hermetic stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against `proptest` 1.x,
//! but the build must succeed with **no registry access**. This shim
//! implements the subset of the API those tests use — strategies over
//! integer ranges, `any::<T>()`, tuples, `prop_map`, collection vectors,
//! the `proptest!` macro, and the `prop_assert*` macros — on top of the
//! in-workspace [`axmc_rand`] generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its generated inputs
//!   (via the regular `assert!` machinery); it is not minimized.
//! * **Deterministic seeding.** Each test's stream is derived from the
//!   test's name, so runs are reproducible without a persistence file.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.
//!
//! The surface is intentionally small; extend it as tests require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use axmc_rand::SeedableRng;

/// Test-runner configuration (the `ProptestConfig` of real proptest).
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The RNG handed to strategies.
    pub type TestRng = axmc_rand::rngs::StdRng;
}

/// Derives a deterministic per-test RNG from the test's name.
pub fn rng_for(test_name: &str) -> test_runner::TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    test_runner::TestRng::seed_from_u64(h)
}

/// Value-generation strategies: the [`Strategy`](strategy::Strategy)
/// trait plus the combinators `proptest!` macros expand into.
pub mod strategy {
    use super::test_runner::TestRng;
    use axmc_rand::{Rng, SampleRange, Standard};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy: `f` builds the second-stage
        /// strategy from a first-stage value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    /// The strategy behind [`any`](super::arbitrary::any): a uniform value
    /// of the whole domain.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Needed so `SampleRange` bounds resolve for range strategies.
    fn _assert_ranges_sample<T>(_r: impl SampleRange<T>) {}
}

/// The [`any`](arbitrary::any) entry point for whole-domain strategies.
pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// A uniform strategy over the full domain of `T`.
    pub fn any<T: axmc_rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Strategies for collections (`vec(element, size_range)`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use axmc_rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A vector length distribution (half-open or inclusive).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the subset of real proptest syntax
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vectors_compose(
            v in crate::collection::vec((any::<bool>(), 0u8..3), 2..5)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (_, small) in v {
                prop_assert!(small < 3);
            }
        }

        #[test]
        fn map_applies(n in (1u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..20).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen = |name: &str| {
            let mut rng = crate::rng_for(name);
            (0..8)
                .map(|_| (0u32..100).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
