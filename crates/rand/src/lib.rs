//! A small, deterministic, dependency-free PRNG for the axmc workspace.
//!
//! The workspace must build and test **hermetically** (no registry
//! access), so the external `rand` crate is replaced by this one. It
//! exposes the minimal surface the workspace actually uses, with the same
//! spelling as `rand` 0.8 so call sites read identically:
//!
//! * [`SeedableRng::seed_from_u64`] — deterministic construction;
//! * [`Rng::gen`] — a uniform value of a primitive type;
//! * [`Rng::gen_range`] — a uniform value in a (half-open or inclusive)
//!   integer range, bias-free via rejection sampling;
//! * [`Rng::gen_bool`] — a Bernoulli draw;
//! * [`rngs::StdRng`] — the default generator (xoshiro256\*\*, seeded
//!   through SplitMix64).
//!
//! xoshiro256\*\* is not cryptographically secure; it is a fast,
//! well-distributed generator suitable for randomized testing and
//! stochastic search, which is all the workspace needs.
//!
//! # Examples
//!
//! ```
//! use axmc_rand::{Rng, SeedableRng};
//!
//! let mut rng = axmc_rand::rngs::StdRng::seed_from_u64(42);
//! let die: u32 = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let word: u64 = rng.gen();
//! let _ = (coin, word);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw entropy source: a stream of uniform `u64` words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of a primitive type (`bool`, unsigned and signed
    /// integers, `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`, without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn f64_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling of a full primitive domain; the bound of [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64())
    }
}

/// Ranges that can produce a uniform sample; the bound of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value in `[0, span)` by rejection sampling (no modulo bias).
#[inline]
fn uniform_below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` representable minus one: values above it
    // would bias the low residues and are re-drawn.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

#[inline]
fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_below_u64(rng, span as u64) as u128;
    }
    if span.is_power_of_two() {
        return u128::sample(rng) & (span - 1);
    }
    let zone = u128::MAX - (u128::MAX % span + 1) % span;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty, $below:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add($below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                // Full-domain inclusive ranges have no representable span.
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample(rng);
                }
                let span = (end as $wide).wrapping_sub(start as $wide) + 1;
                start.wrapping_add($below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range! {
    u8 => u64, uniform_below_u64;
    u16 => u64, uniform_below_u64;
    u32 => u64, uniform_below_u64;
    u64 => u64, uniform_below_u64;
    usize => u64, uniform_below_u64;
    i8 => u64, uniform_below_u64;
    i16 => u64, uniform_below_u64;
    i32 => u64, uniform_below_u64;
    i64 => u64, uniform_below_u64;
    isize => u64, uniform_below_u64;
    u128 => u128, uniform_below_u128;
    i128 => u128, uniform_below_u128;
}

/// SplitMix64: the seeding generator recommended for xoshiro state.
///
/// Also usable standalone when a tiny one-word-state stream is enough.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw state word.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's default generator.
///
/// 256 bits of state, period 2^256 − 1, excellent equidistribution.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64 so similar seeds yield
        // unrelated states (the xoshiro authors' recommendation).
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace default generator (xoshiro256\*\*).
    pub type StdRng = super::Xoshiro256StarStar;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream of SplitMix64 from seed 0 (Vigna's test vector).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..3);
            assert!(v < 3);
            let w: usize = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let x: i64 = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&x));
            let y: u128 = rng.gen_range(0u128..=u128::MAX);
            let _ = y;
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "values missed: {seen:?}");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(rng.gen_range(4u32..=4), 4);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = rngs::StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(3..3);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_width_generation() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        let mut or_mask = 0u64;
        let mut and_mask = u64::MAX;
        for _ in 0..256 {
            let v: u64 = rng.gen();
            or_mask |= v;
            and_mask &= v;
        }
        assert_eq!(or_mask, u64::MAX, "some bit never set");
        assert_eq!(and_mask, 0, "some bit always set");
        let w: u128 = rng.gen();
        let _ = w;
    }
}
