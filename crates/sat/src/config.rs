//! The unified solver configuration surface.
//!
//! [`SolverConfig`] is the one documented way to configure a
//! [`Solver`](crate::Solver): resource governance, proof logging,
//! inprocessing and portfolio clause sharing are all carried by a single
//! immutable builder value that can be stamped onto a solver with
//! [`Solver::configure`](crate::Solver::configure), captured back with
//! [`Solver::current_config`](crate::Solver::current_config), and handed
//! across layers (the model checker's `BmcOptions` and the analysis
//! layer's `AnalysisOptions` both embed or produce one).
//!
//! # Migration from the setter quartet
//!
//! The accreted per-knob mutators are deprecated in favor of the builder:
//!
//! | deprecated setter                  | replacement                                          |
//! |------------------------------------|------------------------------------------------------|
//! | `Solver::set_budget(b)`            | `solver.configure(&cfg.with_budget(b))`              |
//! | `Solver::set_ctl(ctl)`             | `solver.configure(&cfg.with_ctl(ctl))`               |
//! | `Solver::set_proof_logging(true)`  | `solver.configure(&cfg.with_proof_logging(true))`    |
//! | `Bmc::set_budget` / `set_ctl`      | `Bmc::configure(&BmcOptions::new().with_ctl(..))`    |
//! | `Bmc::set_certify(true)`           | `BmcOptions::new().with_certify(true)`               |
//!
//! where `cfg` is either `SolverConfig::new()` for a fresh policy or
//! `solver.current_config()` to re-arm a single knob without disturbing
//! the others (the pattern pooled probes use between jobs).
//!
//! # Examples
//!
//! ```
//! use axmc_sat::{Budget, ResourceCtl, Solver, SolverConfig};
//!
//! let cfg = SolverConfig::new()
//!     .with_ctl(ResourceCtl::unlimited())
//!     .with_budget(Budget::unlimited().with_conflicts(20_000))
//!     .with_proof_logging(true);
//! let mut solver = Solver::with_config(cfg.clone());
//! assert!(solver.proof_logging());
//!
//! // Re-arm only the budget, preserving everything else.
//! let rearmed = solver.current_config().with_budget(Budget::unlimited());
//! solver.configure(&rearmed);
//! assert!(solver.proof_logging());
//! ```

use crate::ctl::ResourceCtl;
use crate::share::ShareHandle;
use crate::solver::Budget;

/// Knobs of the between-solves inprocessing pass (see
/// [`SolverConfig::with_inprocessing`]).
///
/// All limits are deterministic work counts, never wall clock, so an
/// inprocessing solver stays reproducible run to run. The pass runs at
/// solve entry, at decision level 0, and comprises:
///
/// * **root simplification** — satisfied clauses removed, root-false
///   literals stripped;
/// * **subsumption and self-subsuming resolution** over the problem
///   clauses (capped by [`subsumption_checks`](Self::subsumption_checks));
/// * **clause vivification** under a propagation budget slice
///   ([`vivify_propagations`](Self::vivify_propagations), additionally
///   capped by the [`ResourceCtl`] propagation budget);
/// * **bounded variable elimination** of variables explicitly marked
///   [`Solver::mark_eliminable`](crate::Solver::mark_eliminable) (every
///   variable is frozen by default — the incremental API lets callers
///   reference any variable in later clauses or assumptions, so only the
///   caller knows which variables are dead).
///
/// Every rewrite is proof-logged (strengthened clauses as DRAT
/// additions, replaced ones as deletions), so `--certify` keeps working
/// with inprocessing enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InprocessConfig {
    /// Propagation budget for the vivification sweep (per solve call).
    pub vivify_propagations: u64,
    /// Cap on subsumption subset tests (per solve call).
    pub subsumption_checks: u64,
    /// Longest clause the vivifier will walk; longer clauses are skipped.
    pub vivify_max_len: usize,
}

impl Default for InprocessConfig {
    fn default() -> Self {
        InprocessConfig {
            vivify_propagations: 20_000,
            subsumption_checks: 100_000,
            vivify_max_len: 64,
        }
    }
}

/// The complete configuration of a [`Solver`](crate::Solver): resource
/// control, proof logging, inprocessing and clause sharing.
///
/// See the [module documentation](self) for the migration table from the
/// deprecated `set_*` mutators and a usage example.
#[derive(Clone, Debug, Default)]
pub struct SolverConfig {
    ctl: ResourceCtl,
    proof_logging: bool,
    inprocess: Option<InprocessConfig>,
    share: Option<ShareHandle>,
}

impl SolverConfig {
    /// An unlimited, non-logging, non-inprocessing configuration.
    pub fn new() -> Self {
        SolverConfig::default()
    }

    /// Replaces the resource control (budget, deadline, per-call timeout
    /// and cancellation tokens).
    pub fn with_ctl(mut self, ctl: ResourceCtl) -> Self {
        self.ctl = ctl;
        self
    }

    /// Replaces only the deterministic budget, keeping any deadline or
    /// cancellation token of the current control.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.ctl = self.ctl.with_budget(budget);
        self
    }

    /// Enables or disables clausal (DRAT) proof logging. Applying a
    /// logging configuration to a solver that is already logging keeps
    /// the existing buffer; applying a non-logging one discards it.
    pub fn with_proof_logging(mut self, on: bool) -> Self {
        self.proof_logging = on;
        self
    }

    /// Enables the between-solves inprocessing pass with the given knobs
    /// (see [`InprocessConfig`]). Off by default.
    pub fn with_inprocessing(mut self, cfg: InprocessConfig) -> Self {
        self.inprocess = Some(cfg);
        self
    }

    /// Disables inprocessing (the default).
    pub fn without_inprocessing(mut self) -> Self {
        self.inprocess = None;
        self
    }

    /// Attaches a portfolio clause-sharing lane (see
    /// [`ShareRing`](crate::ShareRing)). Off by default.
    pub fn with_share(mut self, handle: ShareHandle) -> Self {
        self.share = Some(handle);
        self
    }

    /// The resource control.
    pub fn ctl(&self) -> &ResourceCtl {
        &self.ctl
    }

    /// Whether proof logging is requested.
    pub fn proof_logging(&self) -> bool {
        self.proof_logging
    }

    /// The inprocessing knobs, if inprocessing is enabled.
    pub fn inprocess(&self) -> Option<&InprocessConfig> {
        self.inprocess.as_ref()
    }

    /// The clause-sharing lane, if sharing is enabled.
    pub fn share(&self) -> Option<&ShareHandle> {
        self.share.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_knobs() {
        let cfg = SolverConfig::new()
            .with_budget(Budget::unlimited().with_conflicts(7))
            .with_proof_logging(true)
            .with_inprocessing(InprocessConfig::default());
        assert_eq!(cfg.ctl().budget().max_conflicts(), Some(7));
        assert!(cfg.proof_logging());
        assert!(cfg.inprocess().is_some());
        assert!(cfg.share().is_none());
        let cfg = cfg.without_inprocessing();
        assert!(cfg.inprocess().is_none());
    }

    #[test]
    fn with_budget_preserves_the_rest_of_the_control() {
        let ctl = ResourceCtl::unlimited().with_timeout(std::time::Duration::from_secs(3600));
        let cfg = SolverConfig::new()
            .with_ctl(ctl)
            .with_budget(Budget::unlimited().with_conflicts(3));
        assert!(cfg.ctl().deadline().is_some(), "deadline survives");
        assert_eq!(cfg.ctl().budget().max_conflicts(), Some(3));
    }
}
