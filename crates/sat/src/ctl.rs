//! Cooperative resource governance for solver invocations.
//!
//! Every engine in the stack ultimately spends its time inside
//! [`Solver::solve_with_assumptions`](crate::Solver::solve_with_assumptions),
//! so that loop is where resource limits must be observed. A
//! [`ResourceCtl`] bundles the three kinds of limit a caller can impose:
//!
//! * a [`Budget`] — deterministic conflict/propagation caps, unchanged
//!   from the original budget-only API;
//! * a wall-clock **deadline** — an absolute [`Instant`] (plus an
//!   optional per-call timeout), checked cheaply inside the search loop;
//! * a [`CancelToken`] — a shared atomic flag that an external thread
//!   can raise to stop every solver observing it, which is how `--jobs N`
//!   worker fleets and cloned portfolio engines are all stopped at once.
//!
//! Deadlines are *absolute*, so per-phase propagation composes for free:
//! a parent analysis stamps its deadline into the control it hands to
//! child queries, and no child can outlive the parent no matter how the
//! work is subdivided. [`ResourceCtl::with_deadline`] keeps the *earlier*
//! of two deadlines for the same reason.
//!
//! An interrupted solve returns
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) and records
//! *why* in [`Solver::last_interrupt`](crate::Solver::last_interrupt),
//! which is what lets the layers above report typed anytime results
//! instead of a bare "unknown".

use crate::solver::Budget;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag.
///
/// Cloning the token shares the underlying flag: raising it through any
/// clone is observed by every solver holding one. The flag is monotonic —
/// once cancelled it stays cancelled — which keeps the semantics of a
/// fleet-wide stop unambiguous.
///
/// # Examples
///
/// ```
/// use axmc_sat::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-raised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Every clone of this token observes the
    /// cancellation from its next check onwards.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a solve call stopped before reaching a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupt {
    /// The per-call conflict budget was exhausted.
    Conflicts,
    /// The per-call propagation budget was exhausted.
    Propagations,
    /// The wall-clock deadline (or per-call timeout) passed.
    Deadline,
    /// The cancellation token was raised.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Interrupt::Conflicts => "conflict budget exhausted",
            Interrupt::Propagations => "propagation budget exhausted",
            Interrupt::Deadline => "deadline expired",
            Interrupt::Cancelled => "cancelled",
        })
    }
}

/// The full set of resource limits governing solver calls: budget,
/// wall-clock deadline, per-call timeout and cancellation token.
///
/// A `ResourceCtl` is cheap to clone and clones *share* the cancellation
/// token, so one control can be stamped onto a whole fleet of cloned
/// portfolio engines and stopped with a single [`CancelToken::cancel`].
///
/// # Examples
///
/// ```
/// use axmc_sat::{Budget, ResourceCtl};
/// use std::time::Duration;
///
/// let ctl = ResourceCtl::unlimited()
///     .with_budget(Budget::unlimited().with_conflicts(20_000))
///     .with_timeout(Duration::from_secs(60));
/// assert_eq!(ctl.budget().max_conflicts(), Some(20_000));
/// assert!(ctl.deadline().is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ResourceCtl {
    budget: Budget,
    deadline: Option<Instant>,
    per_call_timeout: Option<Duration>,
    cancels: Vec<CancelToken>,
}

impl ResourceCtl {
    /// A control imposing no limits at all.
    pub fn unlimited() -> Self {
        ResourceCtl::default()
    }

    /// Sets the deterministic conflict/propagation budget (replacing any
    /// previous budget).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Imposes an absolute wall-clock deadline. If a deadline is already
    /// set, the *earlier* of the two is kept — a child phase can only
    /// tighten, never extend, its parent's deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// Imposes a deadline of `timeout` from now (see
    /// [`ResourceCtl::with_deadline`] for the tightening rule).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(far_future);
        self.with_deadline(deadline)
    }

    /// Caps every *individual* solve call at `timeout` of wall clock, on
    /// top of (and never beyond) the overall deadline. This is the
    /// `--query-timeout` primitive: a run-level deadline bounds the whole
    /// analysis while the per-call timeout stops any single query from
    /// monopolizing it.
    pub fn with_query_timeout(mut self, timeout: Duration) -> Self {
        self.per_call_timeout = Some(match self.per_call_timeout {
            Some(t) => t.min(timeout),
            None => timeout,
        });
        self
    }

    /// Attaches a cancellation token. Clones of the control (and of the
    /// solvers holding it) share the token.
    ///
    /// Tokens *accumulate*: attaching a second token does not detach the
    /// first — the control is interrupted as soon as **any** attached
    /// token is raised. This is what lets a portfolio race stamp its own
    /// loser-cancellation token onto a control without disconnecting the
    /// caller's run-level token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancels.push(token);
        self
    }

    /// The deterministic budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-call timeout, if one is set.
    pub fn query_timeout(&self) -> Option<Duration> {
        self.per_call_timeout
    }

    /// The most recently attached cancellation token, if any. Use
    /// [`ResourceCtl::is_cancelled`] to observe *all* attached tokens.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancels.last()
    }

    /// Returns `true` once any attached cancellation token has been
    /// raised (`false` when no token is attached).
    pub fn is_cancelled(&self) -> bool {
        self.cancels.iter().any(CancelToken::is_cancelled)
    }

    /// The deadline governing a call starting *now*: the overall deadline
    /// tightened by the per-call timeout, whichever is earlier.
    pub fn call_deadline(&self) -> Option<Instant> {
        let per_call = self
            .per_call_timeout
            .map(|t| Instant::now().checked_add(t).unwrap_or_else(far_future));
        match (self.deadline, per_call) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (d, p) => d.or(p),
        }
    }

    /// Checks the wall-clock limits (not the budget): returns the reason
    /// if the control is already cancelled or past its deadline.
    pub fn interrupted(&self) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Interrupt::Deadline);
        }
        None
    }

    /// Remaining wall clock until the deadline (saturating at zero), or
    /// `None` when no deadline is set. Recorded by the solver as the
    /// per-call deadline-slack metric.
    pub fn slack(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// A stand-in for "no deadline in practice" when `Instant` arithmetic
/// would overflow (e.g. `Duration::MAX` timeouts).
fn far_future() -> Instant {
    // ~30 years out; saturating rather than panicking keeps absurdly
    // generous timeouts (u64::MAX seconds) behaving like "unlimited".
    Instant::now() + Duration::from_secs(60 * 60 * 24 * 365 * 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "cancellation visible through all clones");
    }

    #[test]
    fn deadline_only_tightens() {
        let near = Instant::now() + Duration::from_secs(1);
        let far = Instant::now() + Duration::from_secs(100);
        let ctl = ResourceCtl::unlimited()
            .with_deadline(far)
            .with_deadline(near)
            .with_deadline(far);
        assert_eq!(ctl.deadline(), Some(near));
    }

    #[test]
    fn query_timeout_caps_the_call_deadline() {
        let ctl = ResourceCtl::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .with_query_timeout(Duration::from_millis(1));
        let call = ctl.call_deadline().expect("deadline set");
        assert!(call < ctl.deadline().expect("overall deadline"));
    }

    #[test]
    fn expired_deadline_reports_deadline_interrupt() {
        let ctl = ResourceCtl::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(ctl.interrupted(), Some(Interrupt::Deadline));
        assert_eq!(ctl.slack(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let ctl = ResourceCtl::unlimited()
            .with_timeout(Duration::ZERO)
            .with_cancel(token);
        assert_eq!(ctl.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn unlimited_control_never_interrupts() {
        let ctl = ResourceCtl::unlimited();
        assert_eq!(ctl.interrupted(), None);
        assert_eq!(ctl.call_deadline(), None);
        assert_eq!(ctl.slack(), None);
    }

    #[test]
    fn huge_timeouts_saturate_instead_of_panicking() {
        let ctl = ResourceCtl::unlimited().with_timeout(Duration::MAX);
        assert_eq!(ctl.interrupted(), None);
    }

    #[test]
    fn chained_cancel_tokens_are_all_observed() {
        let outer = CancelToken::new();
        let race = CancelToken::new();
        let ctl = ResourceCtl::unlimited()
            .with_cancel(outer.clone())
            .with_cancel(race.clone());
        assert!(!ctl.is_cancelled());
        assert_eq!(ctl.interrupted(), None);

        // Raising either token interrupts the control.
        race.cancel();
        assert!(ctl.is_cancelled());
        assert_eq!(ctl.interrupted(), Some(Interrupt::Cancelled));

        let ctl2 = ResourceCtl::unlimited()
            .with_cancel(outer.clone())
            .with_cancel(CancelToken::new());
        assert!(!ctl2.is_cancelled());
        outer.cancel();
        assert!(ctl2.is_cancelled(), "earlier tokens stay attached");
    }
}
