//! An indexed max-heap over variable activities (the VSIDS order).

use crate::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting decrease/increase-key via an index map.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarOrder {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    #[cfg(test)]
    pub fn new() -> Self {
        VarOrder::default()
    }

    /// Registers a new variable index (must be called in increasing order).
    pub fn grow_to(&mut self, num_vars: usize) {
        while self.position.len() < num_vars {
            self.position.push(ABSENT);
        }
    }

    pub fn contains(&self, var: Var) -> bool {
        self.position[var.index() as usize] != ABSENT
    }

    /// Inserts `var` if absent.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.position[var.index() as usize] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.position[top.index() as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index() as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        let pos = self.position[var.index() as usize];
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index() as usize]
                <= activity[self.heap[parent].index() as usize]
            {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index() as usize]
                    > activity[self.heap[best].index() as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index() as usize]
                    > activity[self.heap[best].index() as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index() as usize] = i;
        self.position[self.heap[j].index() as usize] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut order = VarOrder::new();
        order.grow_to(5);
        for i in 0..5 {
            order.insert(Var::new(i), &activity);
        }
        let mut popped = Vec::new();
        while let Some(v) = order.pop(&activity) {
            popped.push(v.index());
        }
        assert_eq!(popped, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn update_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut order = VarOrder::new();
        order.grow_to(3);
        for i in 0..3 {
            order.insert(Var::new(i), &activity);
        }
        activity[0] = 10.0;
        order.update(Var::new(0), &activity);
        assert_eq!(order.pop(&activity), Some(Var::new(0)));
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut order = VarOrder::new();
        order.grow_to(2);
        order.insert(Var::new(0), &activity);
        order.insert(Var::new(1), &activity);
        let v = order.pop(&activity).unwrap();
        assert!(!order.contains(v));
        order.insert(v, &activity);
        assert!(order.contains(v));
    }
}
