//! A from-scratch CDCL SAT solver with resource budgets, written for the
//! `axmc` approximate-circuit verification toolkit.
//!
//! The solver implements the modern conflict-driven clause-learning loop:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with local clause minimization,
//! * VSIDS variable ordering with phase saving,
//! * Luby-sequence restarts,
//! * glue/activity-based learnt-clause database reduction,
//! * incremental solving under **assumptions**.
//!
//! The feature that matters most to `axmc` is **resource governance**: a
//! solve call runs under a [`ResourceCtl`] — a conflict/propagation
//! [`Budget`], a wall-clock deadline and a shared [`CancelToken`] — and
//! returns [`SolveResult::Unknown`] when any limit is hit, recording the
//! reason in [`Solver::last_interrupt`]. The verifiability-driven search
//! strategy treats `Unknown` as "this candidate is too expensive to
//! verify — discard it", which is what keeps the evolutionary loop fast,
//! and the analysis engines above turn it into typed *anytime* partial
//! results.
//!
//! # Examples
//!
//! ```
//! use axmc_sat::{Solver, SolveResult, Budget};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative(), y.negative()]);
//!
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let (mx, my) = (
//!     solver.model_value(x).unwrap(),
//!     solver.model_value(y).unwrap(),
//! );
//! assert!(mx != my);
//!
//! // The same solver, reused under an assumption and a budget. All
//! // configuration flows through one builder (see [`SolverConfig`]).
//! use axmc_sat::SolverConfig;
//! let cfg = SolverConfig::new().with_budget(Budget::unlimited().with_conflicts(10_000));
//! solver.configure(&cfg);
//! assert_eq!(solver.solve_with_assumptions(&[x.positive()]), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(false));
//! ```
//!
//! Beyond the classic loop, the solver carries the engine-level speed
//! machinery: between-solves **inprocessing** (subsumption,
//! self-subsuming resolution, vivification and marked-variable
//! elimination — see [`InprocessConfig`]) and **portfolio clause
//! sharing** with RUP-validated imports (see [`ShareRing`]), both
//! proof-logged so certification survives them, both off by default and
//! enabled through [`SolverConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod ctl;
mod heap;
mod share;
mod solver;
mod types;

pub use crate::config::{InprocessConfig, SolverConfig};
pub use crate::ctl::{CancelToken, Interrupt, ResourceCtl};
pub use crate::share::{
    ShareHandle, ShareRing, DEFAULT_MAX_SHARED_LBD, DEFAULT_MAX_SHARED_LEN, DEFAULT_RING_CAPACITY,
};
pub use crate::solver::{Budget, Certificate, ProofStep, SolveResult, Solver, SolverStats};
pub use crate::types::{LBool, Lit, Var};
