//! Learned-clause sharing between portfolio solvers.
//!
//! A [`ShareRing`] is an append-only, mutex-guarded buffer of learned
//! clauses shared by a fleet of solvers racing the same problem (the
//! portfolio workers of `axmc-par`). Each solver holds a [`ShareHandle`]
//! identifying its *lane*: exports are tagged with the publishing lane so
//! a solver never re-imports its own clauses, and a private cursor tracks
//! how far into the ring it has already read, so every fetch is an O(new
//! entries) slice copy under a short critical section.
//!
//! # Soundness
//!
//! Shared clauses are treated as *untrusted* on import. The importer
//! re-derives each incoming clause by reverse unit propagation (RUP)
//! against its own clause database at decision level 0: it enqueues the
//! negation of the clause on a scratch decision level, propagates, and
//! accepts the clause only if propagation derives a conflict. Clauses
//! that fail the check — including deliberately corrupted ones — are
//! rejected and counted, never attached. Accepted imports are recorded
//! as DRAT addition steps, so a `--certify` run checks them like any
//! other learned clause. Because validation is local to the importer,
//! sharing is sound even between solvers whose clause databases have
//! diverged (different activation literals, different learned sets).
//!
//! Export is filtered at the source: only clauses with LBD at or below
//! [`ShareHandle::max_lbd`], at most [`ShareHandle::max_len`] literals,
//! and mentioning only the first [`ShareHandle::shared_vars`] variables
//! (the prefix of variables all workers encode identically) are
//! published.

use std::sync::{Arc, Mutex};

use crate::types::Lit;

/// Default LBD ceiling for exported clauses.
pub const DEFAULT_MAX_SHARED_LBD: u32 = 4;
/// Default length ceiling for exported clauses.
pub const DEFAULT_MAX_SHARED_LEN: usize = 30;
/// Default capacity of a ring before further exports are dropped.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[derive(Debug)]
struct SharedClause {
    lane: usize,
    lits: Arc<[Lit]>,
}

/// A shared export/import buffer for one portfolio fleet.
///
/// Cloning a `ShareRing` is cheap and yields another reference to the
/// same buffer. The module-level comment in `share.rs` documents the protocol.
#[derive(Clone, Debug, Default)]
pub struct ShareRing {
    inner: Arc<Mutex<Vec<SharedClause>>>,
    capacity: usize,
}

impl ShareRing {
    /// Creates a ring with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates a ring that stops accepting exports once `capacity`
    /// clauses have been published (a deterministic overflow policy:
    /// late exports are dropped rather than evicting earlier ones, so
    /// cursors never skip entries).
    pub fn with_capacity(capacity: usize) -> Self {
        ShareRing {
            inner: Arc::new(Mutex::new(Vec::new())),
            capacity,
        }
    }

    /// Creates the handle for lane `lane` of this ring.
    ///
    /// `shared_vars` is the number of leading solver variables the lane
    /// considers common to the whole fleet; clauses touching any
    /// variable at or beyond it are neither exported nor imported.
    pub fn handle(&self, lane: usize, shared_vars: usize) -> ShareHandle {
        ShareHandle {
            ring: self.clone(),
            lane,
            shared_vars,
            max_lbd: DEFAULT_MAX_SHARED_LBD,
            max_len: DEFAULT_MAX_SHARED_LEN,
            cursor: 0,
        }
    }

    /// Publishes a clause on behalf of `lane`.
    ///
    /// Public so tests (and adversarial harnesses) can inject arbitrary
    /// clauses; importers validate every entry by RUP regardless of its
    /// origin, so publishing garbage can waste work but not corrupt a
    /// verdict.
    pub fn publish(&self, lane: usize, lits: &[Lit]) {
        let mut inner = self.inner.lock().expect("share ring poisoned");
        if inner.len() >= self.capacity {
            return;
        }
        inner.push(SharedClause {
            lane,
            lits: lits.into(),
        });
    }

    /// Copies every clause published after `cursor` by a lane other than
    /// `lane` into `out`, advancing `cursor` past everything seen.
    pub(crate) fn fetch_from(&self, cursor: &mut usize, lane: usize, out: &mut Vec<Arc<[Lit]>>) {
        let inner = self.inner.lock().expect("share ring poisoned");
        for entry in inner.iter().skip(*cursor) {
            if entry.lane != lane {
                out.push(Arc::clone(&entry.lits));
            }
        }
        *cursor = inner.len();
    }

    /// Number of clauses published so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("share ring poisoned").len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One solver's attachment to a [`ShareRing`].
///
/// Create with [`ShareRing::handle`] and install via
/// [`SolverConfig::with_share`](crate::SolverConfig::with_share).
#[derive(Clone, Debug, Default)]
pub struct ShareHandle {
    pub(crate) ring: ShareRing,
    pub(crate) lane: usize,
    pub(crate) shared_vars: usize,
    pub(crate) max_lbd: u32,
    pub(crate) max_len: usize,
    pub(crate) cursor: usize,
}

impl ShareHandle {
    /// Caps the LBD of exported clauses (default
    /// [`DEFAULT_MAX_SHARED_LBD`]).
    pub fn with_max_lbd(mut self, max_lbd: u32) -> Self {
        self.max_lbd = max_lbd;
        self
    }

    /// Caps the length of exported clauses (default
    /// [`DEFAULT_MAX_SHARED_LEN`]).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// The lane this handle publishes as.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The ring this handle is attached to.
    pub fn ring(&self) -> &ShareRing {
        &self.ring
    }

    /// The number of leading variables treated as fleet-common.
    pub fn shared_vars(&self) -> usize {
        self.shared_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(i: u32) -> Lit {
        Var::new(i).positive()
    }

    #[test]
    fn fetch_skips_own_lane_and_advances_cursor() {
        let ring = ShareRing::new();
        ring.publish(0, &[lit(1), lit(2)]);
        ring.publish(1, &[lit(3)]);
        ring.publish(0, &[lit(4)]);

        let mut cursor = 0;
        let mut out = Vec::new();
        ring.fetch_from(&mut cursor, 0, &mut out);
        assert_eq!(out.len(), 1, "only the lane-1 clause is foreign");
        assert_eq!(&out[0][..], &[lit(3)]);
        assert_eq!(cursor, 3);

        out.clear();
        ring.fetch_from(&mut cursor, 0, &mut out);
        assert!(out.is_empty(), "nothing new after the cursor");

        ring.publish(2, &[lit(5)]);
        ring.fetch_from(&mut cursor, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(cursor, 4);
    }

    #[test]
    fn capacity_drops_late_exports() {
        let ring = ShareRing::with_capacity(2);
        ring.publish(0, &[lit(1)]);
        ring.publish(0, &[lit(2)]);
        ring.publish(0, &[lit(3)]);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn handles_share_one_buffer() {
        let ring = ShareRing::new();
        let a = ring.handle(0, 10).with_max_lbd(2).with_max_len(5);
        let b = ring.handle(1, 10);
        assert_eq!(a.max_lbd, 2);
        assert_eq!(a.max_len, 5);
        assert_eq!(b.lane(), 1);
        a.ring().publish(a.lane(), &[lit(7)]);
        assert_eq!(b.ring().len(), 1);
    }
}
