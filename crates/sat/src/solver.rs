//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The design follows the MiniSat lineage: two-watched-literal propagation,
//! first-UIP conflict analysis with clause minimization, VSIDS branching
//! with phase saving, Luby restarts and activity-based learnt-clause
//! deletion. On top of the classic loop it exposes **resource budgets**
//! (conflict and propagation limits): a budgeted call returns
//! [`SolveResult::Unknown`] instead of running to completion, which is the
//! primitive the verifiability-driven search strategy is built on.

use crate::config::{InprocessConfig, SolverConfig};
use crate::ctl::{Interrupt, ResourceCtl};
use crate::heap::VarOrder;
use crate::share::ShareHandle;
use crate::{LBool, Lit, Var};
use std::time::Instant;

mod inprocess;

/// How many conflicts pass between wall-clock deadline checks inside the
/// search loop. Cancellation is checked every conflict (an atomic load);
/// reading the clock is pricier, so it is amortized over this interval.
const DEADLINE_CHECK_CONFLICTS: u64 = 128;

/// How many decisions pass between full interrupt checks on the
/// conflict-free path, so propagation-heavy runs that rarely conflict
/// still observe deadlines and cancellation.
const DECISION_CHECK_INTERVAL: u64 = 1024;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// The resource budget was exhausted before a verdict was reached.
    Unknown,
}

/// Resource limits for a single solver invocation.
///
/// A fresh [`Budget::unlimited`] imposes no limits. Limits are measured
/// per-call: each `solve` starts counting from zero.
///
/// # Examples
///
/// ```
/// use axmc_sat::Budget;
///
/// let b = Budget::unlimited().with_conflicts(20_000);
/// assert_eq!(b.max_conflicts(), Some(20_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
}

impl Budget {
    /// A budget with no limits.
    pub const fn unlimited() -> Self {
        Budget {
            max_conflicts: None,
            max_propagations: None,
        }
    }

    /// Limits the number of conflicts per call.
    pub const fn with_conflicts(mut self, limit: u64) -> Self {
        self.max_conflicts = Some(limit);
        self
    }

    /// Limits the number of unit propagations per call.
    pub const fn with_propagations(mut self, limit: u64) -> Self {
        self.max_propagations = Some(limit);
        self
    }

    /// The conflict limit, if any.
    pub const fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The propagation limit, if any.
    pub const fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }
}

/// Cumulative statistics over the lifetime of a [`Solver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt: u64,
    /// Learnt clauses deleted by database reduction.
    pub removed: u64,
    /// `solve` invocations.
    pub solves: u64,
}

const NO_REASON: u32 = u32::MAX;

/// One step of the clausal (DRAT-style) derivation recorded by a proof
/// logging [`Solver`] (see [`Solver::set_proof_logging`]).
///
/// The sequence of steps, replayed in order on top of the premises,
/// reconstructs the evolution of the solver's clause database. Every
/// [`ProofStep::Add`] clause is a *reverse unit propagation* (RUP)
/// consequence of the clauses alive before it, which is what the
/// `axmc-check` forward checker verifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A derived (learnt) clause appended to the database.
    Add(Vec<Lit>),
    /// A clause removed from the database by garbage collection.
    Delete(Vec<Lit>),
}

/// The in-memory proof buffer of a logging solver.
#[derive(Clone, Debug, Default)]
struct ProofLog {
    /// The trusted input clauses, recorded verbatim as passed to
    /// [`Solver::add_clause`] (plus a snapshot of the database at the
    /// moment logging was enabled).
    premises: Vec<Vec<Lit>>,
    /// The derivation: learnt-clause additions and deletions, in order.
    steps: Vec<ProofStep>,
    /// The conclusion clause of the most recent `Unsat` answer: empty for
    /// an unconditional refutation, otherwise a subset of the negated
    /// assumptions. `None` when the last answer was not `Unsat`.
    conclusion: Option<Vec<Lit>>,
    /// The assumptions of the most recent `Unsat` answer.
    assumptions: Vec<Lit>,
    /// How many root-trail literals have been re-recorded as explicit
    /// `Add` steps, so inprocessing can delete the clauses that implied
    /// them without breaking later RUP checks. Counts trail positions.
    root_units_logged: usize,
}

/// A borrowed view of everything needed to independently re-check an
/// `Unsat` verdict: premises, derivation steps, the concluded clause and
/// the assumptions it is expressed over.
///
/// Produced by [`Solver::certificate`]; consumed by the `axmc-check`
/// forward RUP/DRAT checker.
#[derive(Clone, Copy, Debug)]
pub struct Certificate<'a> {
    /// Number of variables in the solver at certificate time.
    pub num_vars: usize,
    /// The trusted input clauses (exactly as given to the solver).
    pub premises: &'a [Vec<Lit>],
    /// The recorded derivation steps.
    pub steps: &'a [ProofStep],
    /// The concluded clause: empty means the premises alone are
    /// unsatisfiable; otherwise every literal is the negation of one of
    /// the `assumptions`.
    pub conclusion: &'a [Lit],
    /// The assumptions the `Unsat` answer was conditional on.
    pub assumptions: &'a [Lit],
}

/// Clause header; the literals live in the solver's shared arena at
/// `start .. start + len`, so propagation walks one contiguous
/// allocation instead of taking a heap hop per clause.
#[derive(Clone, Copy, Debug, Default)]
struct Clause {
    start: u32,
    len: u32,
    activity: f64,
    lbd: u32,
    learnt: bool,
    deleted: bool,
}

/// Marks a watcher of a binary clause in `Watcher::cref_flag`. Binary
/// watchers carry the whole clause (the blocker is the other literal),
/// so propagating them never touches clause memory.
const WATCH_BINARY: u32 = 1 << 31;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref_flag: u32,
    blocker: Lit,
}

impl Watcher {
    #[inline]
    fn new(cref: u32, blocker: Lit, binary: bool) -> Self {
        debug_assert_eq!(cref & WATCH_BINARY, 0, "clause reference overflow");
        Watcher {
            cref_flag: cref | if binary { WATCH_BINARY } else { 0 },
            blocker,
        }
    }

    #[inline]
    fn cref(self) -> u32 {
        self.cref_flag & !WATCH_BINARY
    }

    #[inline]
    fn is_binary(self) -> bool {
        self.cref_flag & WATCH_BINARY != 0
    }
}

/// An incremental CDCL SAT solver with assumption and budget support.
///
/// # Examples
///
/// ```
/// use axmc_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// solver.add_clause(&[a, b]);
/// solver.add_clause(&[!a]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.model_value(b.var()), Some(true));
///
/// solver.add_clause(&[!b]);
/// assert_eq!(solver.solve(), SolveResult::Unsat);
/// ```
///
/// The solver is plain owned data (no interior shared state), so it is
/// `Send` — instances move freely onto worker threads — and `Clone` —
/// a warmed-up instance (including its learnt clauses) can be duplicated
/// for portfolio solving, after which the copies are fully independent.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Literal storage for every clause (see [`Clause`]). Deleted and
    /// shrunk clauses leave holes, tracked in `garbage` and reclaimed by
    /// `collect_garbage`.
    arena: Vec<Lit>,
    garbage: usize,
    learnt_refs: Vec<u32>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    cla_inc: f64,
    ok: bool,
    seen: Vec<bool>,
    model: Vec<LBool>,
    stats: SolverStats,
    ctl: ResourceCtl,
    last_interrupt: Option<Interrupt>,
    max_learnts: f64,
    num_original: usize,
    proof: Option<Box<ProofLog>>,
    /// Variables the caller has declared safe to eliminate (never
    /// referenced again in clauses or assumptions).
    eliminable: Vec<bool>,
    /// Variables removed by bounded variable elimination.
    eliminated: Vec<bool>,
    num_eliminated: usize,
    /// Clauses removed by variable elimination, per variable, in
    /// elimination order — replayed backwards to extend a model over the
    /// eliminated variables.
    elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    /// Inprocessing knobs; `None` disables the pass (the default).
    inprocess: Option<InprocessConfig>,
    /// `(num_original, root-trail length)` at the end of the last
    /// inprocessing pass; when unchanged, the pass is skipped, so a
    /// burst of solves on a static database pays for simplification
    /// once.
    inprocess_stamp: Option<(usize, usize)>,
    /// Portfolio clause-sharing lane; `None` disables sharing (the
    /// default).
    share: Option<ShareHandle>,
    // LBD histogram resolved once per instrumented solve call, so the
    // per-learnt-clause record in the search loop is a few relaxed
    // atomic adds instead of a registry name lookup. `None` whenever
    // observability is off.
    lbd_hist: Option<std::sync::Arc<axmc_obs::Histogram>>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 3000.0,
            ..Default::default()
        }
    }

    /// Adds a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.eliminable.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        if axmc_obs::enabled() {
            axmc_obs::counter("sat.vars.created").inc();
        }
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses added, excluding units
    /// absorbed into the top-level assignment.
    pub fn num_clauses(&self) -> usize {
        self.num_original
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Creates a solver governed by `config`.
    ///
    /// Equivalent to [`Solver::new`] followed by [`Solver::configure`].
    pub fn with_config(config: SolverConfig) -> Self {
        let mut s = Solver::new();
        s.configure(&config);
        s
    }

    /// Applies a complete [`SolverConfig`]: resource control, proof
    /// logging, inprocessing and clause sharing in one call.
    ///
    /// This is the one documented way to (re)configure a solver; see the
    /// [`crate::config`] module for the migration table from the
    /// deprecated per-knob setters. Applying a proof-logging
    /// configuration to a solver that is already logging keeps the
    /// existing buffer (so re-arming a budget between solves never drops
    /// a certificate); applying a non-logging one discards it.
    pub fn configure(&mut self, config: &SolverConfig) {
        self.ctl = config.ctl().clone();
        self.inprocess = config.inprocess().copied();
        self.share = config.share().cloned();
        self.apply_proof_logging(config.proof_logging());
    }

    /// Captures the solver's current configuration, so a single knob can
    /// be changed without disturbing the others:
    ///
    /// ```
    /// # use axmc_sat::{Budget, Solver};
    /// # let mut solver = Solver::new();
    /// let cfg = solver.current_config().with_budget(Budget::unlimited());
    /// solver.configure(&cfg);
    /// ```
    pub fn current_config(&self) -> SolverConfig {
        let mut cfg = SolverConfig::new()
            .with_ctl(self.ctl.clone())
            .with_proof_logging(self.proof.is_some());
        if let Some(ip) = self.inprocess {
            cfg = cfg.with_inprocessing(ip);
        }
        if let Some(sh) = &self.share {
            cfg = cfg.with_share(sh.clone());
        }
        cfg
    }

    /// Declares that the caller will never reference `v` again — not in
    /// clauses, not in assumptions — making it a candidate for bounded
    /// variable elimination during inprocessing. Variables are frozen by
    /// default; elimination only ever touches marked ones.
    pub fn mark_eliminable(&mut self, v: Var) {
        self.eliminable[v.index() as usize] = true;
    }

    /// Whether inprocessing has eliminated `v`. Eliminated variables
    /// must not appear in later clauses or assumptions; their model
    /// values are reconstructed automatically after a `Sat` answer.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index() as usize]
    }

    /// Sets the resource budget applied to each subsequent `solve` call,
    /// leaving any deadline or cancellation token in place.
    #[deprecated(note = "use `Solver::configure` with `SolverConfig::with_budget` \
                         (see the `axmc_sat::config` migration table)")]
    pub fn set_budget(&mut self, budget: Budget) {
        self.ctl = self.ctl.clone().with_budget(budget);
    }

    /// Sets the full resource control (budget, deadline, per-call timeout
    /// and cancellation token) applied to each subsequent `solve` call.
    #[deprecated(note = "use `Solver::configure` with `SolverConfig::with_ctl` \
                         (see the `axmc_sat::config` migration table)")]
    pub fn set_ctl(&mut self, ctl: ResourceCtl) {
        self.ctl = ctl;
    }

    /// The resource control currently governing `solve` calls.
    pub fn ctl(&self) -> &ResourceCtl {
        &self.ctl
    }

    /// Why the most recent `solve` call returned
    /// [`SolveResult::Unknown`], or `None` if it ran to a verdict.
    pub fn last_interrupt(&self) -> Option<Interrupt> {
        self.last_interrupt
    }

    /// Enables or disables clausal proof logging.
    ///
    /// While logging is on, every clause passed to [`Solver::add_clause`]
    /// is recorded verbatim as a premise, and every learnt-clause addition
    /// or deletion is recorded as a derivation step. After an `Unsat`
    /// answer, [`Solver::certificate`] returns the complete material for
    /// an independent forward RUP/DRAT check (the `axmc-check` crate
    /// implements one).
    ///
    /// Enabling logging on a solver that already holds clauses snapshots
    /// the current database (including the root-level trail) as premises:
    /// certification is then relative to that state, not to clauses added
    /// before the call. Disabling logging discards the buffer.
    #[deprecated(
        note = "use `Solver::configure` with `SolverConfig::with_proof_logging` \
                         (see the `axmc_sat::config` migration table)"
    )]
    pub fn set_proof_logging(&mut self, on: bool) {
        self.apply_proof_logging(on);
    }

    fn apply_proof_logging(&mut self, on: bool) {
        if !on {
            self.proof = None;
            return;
        }
        if self.proof.is_some() {
            return;
        }
        let mut log = ProofLog::default();
        for c in &self.clauses {
            if !c.deleted {
                log.premises
                    .push(self.arena[c.start as usize..(c.start + c.len) as usize].to_vec());
            }
        }
        debug_assert_eq!(self.decision_level(), 0);
        for &l in &self.trail {
            log.premises.push(vec![l]);
        }
        log.root_units_logged = self.trail.len();
        if !self.ok {
            log.premises.push(Vec::new());
        }
        self.proof = Some(Box::new(log));
    }

    /// Returns `true` if proof logging is currently enabled.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// Returns the certificate of the most recent `Unsat` answer, or
    /// `None` if proof logging is off or the last answer was not `Unsat`.
    pub fn certificate(&self) -> Option<Certificate<'_>> {
        let log = self.proof.as_deref()?;
        let conclusion = log.conclusion.as_deref()?;
        Some(Certificate {
            num_vars: self.num_vars(),
            premises: &log.premises,
            steps: &log.steps,
            conclusion,
            assumptions: &log.assumptions,
        })
    }

    /// Streams the recorded derivation in standard DRAT text format
    /// (`d` lines for deletions, plain clause lines for additions, DIMACS
    /// literal numbering) to `out`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if proof logging is off (`InvalidInput`), or
    /// propagates I/O errors from `out`.
    pub fn write_drat<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        let log = self.proof.as_deref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "proof logging is off")
        })?;
        for step in &log.steps {
            let lits = match step {
                ProofStep::Add(lits) => lits,
                ProofStep::Delete(lits) => {
                    out.write_all(b"d ")?;
                    lits
                }
            };
            for l in lits {
                write!(out, "{} ", l.to_dimacs())?;
            }
            out.write_all(b"0\n")?;
        }
        Ok(())
    }

    /// The recorded derivation as DRAT text (see [`Solver::write_drat`]),
    /// or `None` if proof logging is off.
    pub fn proof_drat(&self) -> Option<String> {
        let mut buf = Vec::new();
        self.write_drat(&mut buf).ok()?;
        Some(String::from_utf8(buf).expect("DRAT text is ASCII"))
    }

    #[inline]
    fn log_step(&mut self, step: ProofStep) {
        if let Some(log) = self.proof.as_mut() {
            log.steps.push(step);
        }
    }

    /// Records the verdict of the search that just finished.
    fn log_conclusion(&mut self, conclusion: Option<Vec<Lit>>, assumptions: &[Lit]) {
        if let Some(log) = self.proof.as_mut() {
            log.conclusion = conclusion;
            log.assumptions = assumptions.to_vec();
        }
    }

    /// Current decision level.
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        self.assigns[l.var().index() as usize].negate_if(l.is_negative())
    }

    /// Adds a clause. Returns `false` if the solver is now in an
    /// unsatisfiable state at the root level (the clause — possibly
    /// combined with earlier ones — is contradictory).
    ///
    /// Must be called with the solver at decision level 0, which is always
    /// the case between `solve` calls.
    ///
    /// # Panics
    ///
    /// Panics if any literal refers to a variable that was not created
    /// with [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        for &l in lits {
            assert!(
                (l.var().index() as usize) < self.assigns.len(),
                "unknown variable {:?}",
                l.var()
            );
        }
        if self.num_eliminated > 0 {
            for &l in lits {
                assert!(
                    !self.eliminated[l.var().index() as usize],
                    "clause mentions eliminated variable {:?}",
                    l.var()
                );
            }
        }
        if let Some(log) = self.proof.as_mut() {
            log.premises.push(lits.to_vec());
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology / root-level simplification.
        let mut filtered = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains l and !l adjacently after sort
            }
            match self.value_lit(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.alloc_clause(filtered, false);
                true
            }
        }
    }

    /// The literals of a clause, resolved through the arena.
    #[inline]
    fn lits(&self, cref: u32) -> &[Lit] {
        let c = &self.clauses[cref as usize];
        &self.arena[c.start as usize..(c.start + c.len) as usize]
    }

    /// Compacts the arena once at least half of it is holes left by
    /// deleted or shrunk clauses. Clause references are indices into
    /// `clauses` (only `start` offsets move), so watchers, reasons, and
    /// the eliminated-clause stack all survive compaction untouched.
    fn collect_garbage(&mut self) {
        if self.garbage == 0 || self.garbage * 2 < self.arena.len() {
            return;
        }
        let mut arena = Vec::with_capacity(self.arena.len() - self.garbage);
        for c in &mut self.clauses {
            if c.deleted || c.len == 0 {
                c.start = 0;
                c.len = 0;
                continue;
            }
            let start = arena.len() as u32;
            arena.extend_from_slice(&self.arena[c.start as usize..(c.start + c.len) as usize]);
            c.start = start;
        }
        self.arena = arena;
        self.garbage = 0;
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = !lits[0];
        let w1 = !lits[1];
        let blocker0 = lits[1];
        let blocker1 = lits[0];
        let binary = lits.len() == 2;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(&lits);
        self.clauses.push(Clause {
            start,
            len: lits.len() as u32,
            activity: 0.0,
            lbd: 0,
            learnt,
            deleted: false,
        });
        self.watches[w0.code() as usize].push(Watcher::new(cref, blocker0, binary));
        self.watches[w1.code() as usize].push(Watcher::new(cref, blocker1, binary));
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnt += 1;
        } else {
            self.num_original += 1;
        }
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index() as usize;
        self.assigns[v] = LBool::from_bool(!l.is_negative());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut j = 0;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already satisfied.
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref();
                if self.clauses[cref as usize].deleted {
                    continue; // drop watcher of deleted clause
                }
                // Binary clauses carry the whole clause in the watcher:
                // the blocker is the other literal, so it is unit or
                // conflicting now and no clause memory is touched.
                if w.is_binary() {
                    ws[j] = w;
                    j += 1;
                    // Reason-clause convention: the implied literal must
                    // sit at position 0 for conflict analysis and
                    // `is_locked`.
                    let s = self.clauses[cref as usize].start as usize;
                    if self.arena[s] != w.blocker {
                        self.arena.swap(s, s + 1);
                    }
                    if self.value_lit(w.blocker) == LBool::False {
                        while i < ws.len() {
                            ws[j] = ws[i];
                            j += 1;
                            i += 1;
                        }
                        self.qhead = self.trail.len();
                        conflict = Some(cref);
                    } else {
                        self.unchecked_enqueue(w.blocker, cref);
                    }
                    continue;
                }
                let false_lit = !p;
                let (s, n) = {
                    let c = &self.clauses[cref as usize];
                    (c.start as usize, c.len as usize)
                };
                // Normalize: watched false literal at index 1.
                if self.arena[s] == false_lit {
                    self.arena.swap(s, s + 1);
                }
                debug_assert_eq!(self.arena[s + 1], false_lit);
                let first = self.arena[s];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = Watcher::new(cref, first, false);
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..n {
                    let lk = self.arena[s + k];
                    if self.value_lit(lk) != LBool::False {
                        self.arena.swap(s + 1, s + k);
                        let new_watch = !self.arena[s + 1];
                        self.watches[new_watch.code() as usize]
                            .push(Watcher::new(cref, first, false));
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[j] = Watcher::new(cref, first, false);
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: flush remaining watchers and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            self.watches[p.code() as usize] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for idx in (bound..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index() as usize;
            self.assigns[v] = LBool::Undef;
            self.polarity[v] = !l.is_negative();
            self.reason[v] = NO_REASON;
            self.order.insert(l.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.index() as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for r in &self.learnt_refs {
                self.clauses[*r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for the UIP
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        let current = self.decision_level();

        loop {
            debug_assert_ne!(confl, NO_REASON, "decision reached during analysis");
            if self.clauses[confl as usize].learnt {
                self.bump_clause(confl);
            }
            let start = usize::from(p.is_some());
            let (cs, nlits) = {
                let c = &self.clauses[confl as usize];
                (c.start as usize, c.len as usize)
            };
            for k in start..nlits {
                let q = self.arena[cs + k];
                let v = q.var();
                let vi = v.index() as usize;
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[vi] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index() as usize] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index() as usize];
        }
        learnt[0] = !p.expect("UIP exists");

        // Local clause minimization: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.implied_by_seen(l) {
                minimized.push(l);
            }
        }
        let mut learnt = minimized;

        // Clear seen flags.
        for v in to_clear {
            self.seen[v.index() as usize] = false;
        }

        // Compute backtrack level; place a watch on the second-highest level.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index() as usize]
                    > self.level[learnt[max_i].var().index() as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index() as usize]
        };
        (learnt, bt_level)
    }

    /// A literal is redundant if its reason clause's other literals are all
    /// already in the learnt clause (marked seen) or at level 0.
    fn implied_by_seen(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index() as usize];
        if r == NO_REASON {
            return false;
        }
        self.lits(r).iter().skip(1).all(|&q| {
            let vi = q.var().index() as usize;
            self.seen[vi] || self.level[vi] == 0
        })
    }

    fn lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            let vi = v.index() as usize;
            if self.assigns[vi] == LBool::Undef && !self.eliminated[vi] {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses by (glue, activity): keep low-LBD, active ones.
        let clauses = &self.clauses;
        self.learnt_refs.retain(|&r| !clauses[r as usize].deleted);
        let mut refs = self.learnt_refs.clone();
        refs.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let target = refs.len() / 2;
        let mut removed = 0;
        for &r in &refs {
            if removed >= target {
                break;
            }
            let keep = {
                let c = &self.clauses[r as usize];
                c.lbd <= 2 || c.len == 2 || self.is_locked(r)
            };
            if !keep {
                if self.proof.is_some() {
                    let lits = self.lits(r).to_vec();
                    self.log_step(ProofStep::Delete(lits));
                }
                let c = &mut self.clauses[r as usize];
                self.garbage += c.len as usize;
                c.deleted = true;
                c.len = 0;
                removed += 1;
                self.stats.removed += 1;
            }
        }
        let clauses = &self.clauses;
        self.learnt_refs.retain(|&r| !clauses[r as usize].deleted);
        self.collect_garbage();
    }

    fn is_locked(&self, cref: u32) -> bool {
        let c = &self.clauses[cref as usize];
        if c.len == 0 {
            return false;
        }
        let first = self.arena[c.start as usize];
        self.value_lit(first) == LBool::True && self.reason[first.var().index() as usize] == cref
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Publishes a freshly learnt clause on the sharing ring if a lane is
    /// attached and the clause passes the export filter (LBD, length,
    /// fleet-common variable prefix).
    #[inline]
    fn export_learnt(&self, lits: &[Lit], lbd: u32) {
        let Some(h) = &self.share else { return };
        if lbd > h.max_lbd || lits.len() > h.max_len {
            return;
        }
        if lits
            .iter()
            .any(|l| l.var().index() as usize >= h.shared_vars)
        {
            return;
        }
        h.ring.publish(h.lane, lits);
        if axmc_obs::enabled() {
            axmc_obs::counter("sat.share.exported").inc();
        }
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// [`SolveResult::Unsat`] means unsatisfiable *under the assumptions*;
    /// the solver remains usable afterwards (assumptions are not clauses).
    ///
    /// When [`axmc_obs::enabled`] observability is on, each call records
    /// its wall-clock time and per-query conflict/decision/propagation
    /// deltas into the global metrics registry and emits one
    /// `sat.solve` trace event.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !axmc_obs::enabled() {
            return self.run_search(assumptions);
        }
        let before = self.stats;
        self.lbd_hist = Some(axmc_obs::histogram("sat.learnt.lbd"));
        let timer = axmc_obs::span("sat.solve.time_us");
        let result = self.run_search(assumptions);
        let time_us = timer.finish();
        self.lbd_hist = None;
        let conflicts = self.stats.conflicts - before.conflicts;
        let decisions = self.stats.decisions - before.decisions;
        let propagations = self.stats.propagations - before.propagations;
        let restarts = self.stats.restarts - before.restarts;
        let learnt = self.stats.learnt - before.learnt;
        let removed = self.stats.removed - before.removed;
        axmc_obs::counter("sat.solves").inc();
        axmc_obs::counter(match result {
            SolveResult::Sat => "sat.result.sat",
            SolveResult::Unsat => "sat.result.unsat",
            SolveResult::Unknown => "sat.result.unknown",
        })
        .inc();
        axmc_obs::counter("sat.restarts").add(restarts);
        axmc_obs::counter("sat.learnt").add(learnt);
        axmc_obs::counter("sat.learnt.removed").add(removed);
        axmc_obs::histogram("sat.solve.conflicts").record(conflicts);
        axmc_obs::histogram("sat.solve.decisions").record(decisions);
        axmc_obs::histogram("sat.solve.propagations").record(propagations);
        // Propagations per conflict: the classic "is the search making
        // progress or thrashing" CDCL health indicator. Conflict-free
        // solves have no meaningful ratio and are skipped.
        if let Some(ratio) = propagations.checked_div(conflicts) {
            axmc_obs::histogram("sat.solve.props_per_conflict").record(ratio);
        }
        // Deadline slack: how much wall clock was left when the call
        // returned. A shrinking slack histogram is the early signal that
        // a run is about to degrade into Interrupted partial results.
        if let Some(slack) = self.ctl.slack() {
            axmc_obs::histogram("sat.deadline.slack_us")
                .record(slack.as_micros().min(u64::MAX as u128) as u64);
        }
        if result == SolveResult::Unknown {
            if let Some(reason) = self.last_interrupt {
                axmc_obs::counter(match reason {
                    Interrupt::Conflicts => "sat.interrupt.conflicts",
                    Interrupt::Propagations => "sat.interrupt.propagations",
                    Interrupt::Deadline => "sat.interrupt.deadline",
                    Interrupt::Cancelled => "sat.interrupt.cancelled",
                })
                .inc();
            }
        }
        if axmc_obs::tracing_active() {
            axmc_obs::emit(
                axmc_obs::Event::new("sat.solve")
                    .field(
                        "result",
                        match result {
                            SolveResult::Sat => "sat",
                            SolveResult::Unsat => "unsat",
                            SolveResult::Unknown => "unknown",
                        },
                    )
                    .field("time_us", time_us)
                    .field("conflicts", conflicts)
                    .field("decisions", decisions)
                    .field("propagations", propagations)
                    .field("restarts", restarts)
                    .field("learnt", learnt)
                    .field("removed", removed)
                    .field("vars", self.num_vars() as u64)
                    .field("clauses", self.num_clauses() as u64)
                    .field("assumptions", assumptions.len()),
            );
        }
        result
    }

    /// Checks the wall-clock limits: the shared cancellation token (an
    /// atomic load, cheap enough for every conflict) and the effective
    /// per-call deadline.
    #[inline]
    fn wallclock_interrupt(&self, call_deadline: Option<Instant>) -> Option<Interrupt> {
        if self.ctl.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if call_deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Interrupt::Deadline);
        }
        None
    }

    /// The CDCL search loop behind [`Solver::solve_with_assumptions`].
    fn run_search(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.last_interrupt = None;
        if !self.ok {
            self.log_conclusion(Some(Vec::new()), assumptions);
            return SolveResult::Unsat;
        }
        // An already-cancelled token or expired deadline returns before
        // any work: once an analysis is interrupted, every later phase
        // that reuses the control bails out in microseconds.
        if let Some(reason) = self.ctl.interrupted() {
            self.last_interrupt = Some(reason);
            self.log_conclusion(None, assumptions);
            return SolveResult::Unknown;
        }
        // Between-solves inprocessing and shared-clause import, both at
        // decision level 0. Either can expose a root-level conflict.
        if self.inprocess.is_some() || self.share.is_some() {
            self.presolve();
            if !self.ok {
                self.log_conclusion(Some(Vec::new()), assumptions);
                return SolveResult::Unsat;
            }
        }
        if self.num_eliminated > 0 {
            for &l in assumptions {
                assert!(
                    !self.eliminated[l.var().index() as usize],
                    "assumption on eliminated variable {:?}",
                    l.var()
                );
            }
        }
        let call_deadline = self.ctl.call_deadline();
        let start_conflicts = self.stats.conflicts;
        let start_props = self.stats.propagations;
        let mut restart_round: u64 = 0;
        let restart_base: u64 = 100;
        // Conclusion clause of an Unsat answer: empty for an unconditional
        // refutation, an assumption core otherwise.
        let mut conclusion: Vec<Lit> = Vec::new();

        let result = 'outer: loop {
            let budget_limit = restart_base * luby(restart_round);
            restart_round += 1;
            let mut conflicts_this_round: u64 = 0;

            loop {
                if let Some(confl) = self.propagate() {
                    self.stats.conflicts += 1;
                    conflicts_this_round += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        break 'outer SolveResult::Unsat;
                    }
                    let (learnt, bt) = self.analyze(confl);
                    if self.proof.is_some() {
                        self.log_step(ProofStep::Add(learnt.clone()));
                    }
                    self.cancel_until(bt);
                    if learnt.len() == 1 {
                        if let Some(h) = &self.lbd_hist {
                            h.record(1); // a unit spans one decision level
                        }
                        self.export_learnt(&learnt, 1);
                        self.unchecked_enqueue(learnt[0], NO_REASON);
                    } else {
                        let lbd = self.lbd(&learnt);
                        if let Some(h) = &self.lbd_hist {
                            h.record(lbd as u64);
                        }
                        self.export_learnt(&learnt, lbd);
                        let first = learnt[0];
                        let cref = self.alloc_clause(learnt, true);
                        self.clauses[cref as usize].lbd = lbd;
                        self.bump_clause(cref);
                        self.unchecked_enqueue(first, cref);
                    }
                    self.decay_activities();

                    let spent_conflicts = self.stats.conflicts - start_conflicts;
                    if let Some(max) = self.ctl.budget().max_conflicts() {
                        if spent_conflicts >= max {
                            self.last_interrupt = Some(Interrupt::Conflicts);
                            break 'outer SolveResult::Unknown;
                        }
                    }
                    if let Some(max) = self.ctl.budget().max_propagations() {
                        if self.stats.propagations - start_props >= max {
                            self.last_interrupt = Some(Interrupt::Propagations);
                            break 'outer SolveResult::Unknown;
                        }
                    }
                    // Cancellation every conflict; the (pricier) clock
                    // read amortized over DEADLINE_CHECK_CONFLICTS.
                    let check_deadline = spent_conflicts.is_multiple_of(DEADLINE_CHECK_CONFLICTS);
                    if let Some(reason) =
                        self.wallclock_interrupt(if check_deadline { call_deadline } else { None })
                    {
                        self.last_interrupt = Some(reason);
                        break 'outer SolveResult::Unknown;
                    }
                } else {
                    // No conflict: maybe restart, reduce, then decide.
                    // Propagation-heavy runs can go a long time without
                    // conflicting; a decision-count-gated check keeps
                    // them responsive to deadlines and cancellation too.
                    if self.stats.decisions.is_multiple_of(DECISION_CHECK_INTERVAL) {
                        if let Some(reason) = self.wallclock_interrupt(call_deadline) {
                            self.last_interrupt = Some(reason);
                            break 'outer SolveResult::Unknown;
                        }
                    }
                    if conflicts_this_round >= budget_limit {
                        self.stats.restarts += 1;
                        self.cancel_until(0);
                        break; // next Luby round
                    }
                    if self.learnt_refs.len() as f64 > self.max_learnts {
                        self.reduce_db();
                        self.max_learnts *= 1.1;
                    }
                    // Assumption levels first.
                    let dl = self.decision_level() as usize;
                    if dl < assumptions.len() {
                        let p = assumptions[dl];
                        match self.value_lit(p) {
                            LBool::True => {
                                // Dummy level so indices line up.
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::False => {
                                if self.proof.is_some() {
                                    conclusion = self.analyze_final(p);
                                }
                                break 'outer SolveResult::Unsat;
                            }
                            LBool::Undef => {
                                self.stats.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                self.unchecked_enqueue(p, NO_REASON);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            // Complete assignment: model found.
                            self.model = self.assigns.clone();
                            if !self.elim_stack.is_empty() {
                                self.extend_model();
                            }
                            break 'outer SolveResult::Sat;
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            let phase = self.polarity[v.index() as usize];
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(Lit::new(v, !phase), NO_REASON);
                        }
                    }
                }
            }
        };
        self.log_conclusion(
            if result == SolveResult::Unsat {
                Some(conclusion)
            } else {
                None
            },
            assumptions,
        );
        self.cancel_until(0);
        result
    }

    /// Computes the conclusion clause of an `Unsat`-under-assumptions
    /// answer: the MiniSat-style assumption core. `p` is the assumption
    /// found false on the current trail; the returned clause consists of
    /// `!p` plus the negations of the assumptions that forced it, and is a
    /// RUP consequence of the clause database.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut out = vec![!p];
        if self.level[p.var().index() as usize] == 0 || self.decision_level() == 0 {
            return out;
        }
        self.seen[p.var().index() as usize] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[idx];
            let qv = q.var().index() as usize;
            if !self.seen[qv] {
                continue;
            }
            self.seen[qv] = false;
            let r = self.reason[qv];
            if r == NO_REASON {
                // Every decision below `assumptions.len()` levels is an
                // assumption; its negation belongs in the core. (When `p`
                // contradicts an earlier assumption `!p` this yields the
                // tautology `{!p, p}`, which is trivially RUP.)
                out.push(!q);
            } else {
                let (cs, nlits) = {
                    let c = &self.clauses[r as usize];
                    (c.start as usize, c.len as usize)
                };
                for k in 1..nlits {
                    let l = self.arena[cs + k];
                    let lv = l.var().index() as usize;
                    if self.level[lv] > 0 {
                        self.seen[lv] = true;
                    }
                }
            }
        }
        self.seen[p.var().index() as usize] = false;
        out
    }

    /// Returns the model value of `var` from the most recent
    /// [`SolveResult::Sat`] answer, or `None` if the variable was
    /// irrelevant or no model is available.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model
            .get(var.index() as usize)
            .and_then(|v| v.to_option())
    }

    /// Returns the model value of a literal (see [`Solver::model_value`]).
    pub fn model_lit(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var()).map(|b| b ^ lit.is_negative())
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    // Find the subsequence containing index i.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::CancelToken;

    fn lit(solver_vars: &[Var], dimacs: i64) -> Lit {
        let v = solver_vars[(dimacs.unsigned_abs() - 1) as usize];
        Lit::new(v, dimacs < 0)
    }

    fn make(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivially_sat() {
        let (mut s, v) = make(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m1 = s.model_value(v[0]).unwrap();
        let m2 = s.model_value(v[1]).unwrap();
        assert!(m1 || m2);
    }

    #[test]
    fn trivially_unsat() {
        let (mut s, v) = make(1);
        s.add_clause(&[lit(&v, 1)]);
        assert!(!s.add_clause(&[lit(&v, -1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let (mut s, v) = make(4);
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -3), lit(&v, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &var in &v {
            assert_eq!(s.model_value(var), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let (mut s, v) = make(6);
        let p = |i: usize, j: usize| v[i * 2 + j].positive();
        for i in 0..3 {
            s.add_clause(&[p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let h = 4;
        let (mut s, v) = make(n * h);
        let p = |i: usize, j: usize| v[i * h + j].positive();
        for i in 0..n {
            let holes: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&holes);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let (mut s, v) = make(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        // Without the assumptions the formula is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn contradictory_assumptions() {
        let (mut s, v) = make(1);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 1), lit(&v, -1)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A hard pigeonhole instance with a one-conflict budget.
        let n = 8;
        let h = 7;
        let (mut s, v) = make(n * h);
        let p = |i: usize, j: usize| v[i * h + j].positive();
        for i in 0..n {
            let holes: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&holes);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        s.configure(&SolverConfig::new().with_budget(Budget::unlimited().with_conflicts(1)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Lifting the budget lets it finish.
        s.configure(&SolverConfig::new());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// A pigeonhole instance PHP(n, n-1) for the interruption tests:
    /// `n = 10` is large enough that no machine finishes it within a few
    /// milliseconds; smaller sizes solve quickly when a test needs a
    /// completed verdict.
    fn pigeonhole(n: usize) -> Solver {
        let h = n - 1;
        let (mut s, v) = make(n * h);
        let p = |i: usize, j: usize| v[i * h + j].positive();
        for i in 0..n {
            let holes: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&holes);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        s
    }

    #[test]
    fn budget_exhaustion_reports_the_interrupt_reason() {
        let mut s = pigeonhole(10);
        s.configure(&SolverConfig::new().with_budget(Budget::unlimited().with_conflicts(1)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Conflicts));
        s.configure(&SolverConfig::new().with_budget(Budget::unlimited().with_propagations(1)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Propagations));
    }

    #[test]
    fn expired_deadline_returns_unknown_immediately() {
        let mut s = pigeonhole(10);
        s.configure(
            &SolverConfig::new()
                .with_ctl(ResourceCtl::unlimited().with_timeout(std::time::Duration::ZERO)),
        );
        let start = Instant::now();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Deadline));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "expired deadline must short-circuit the search"
        );
        // Conflict counters untouched: nothing ran.
        assert_eq!(s.stats().conflicts, 0);
    }

    #[test]
    fn raised_cancel_token_stops_the_search() {
        let mut s = pigeonhole(10);
        let token = CancelToken::new();
        s.configure(
            &SolverConfig::new().with_ctl(ResourceCtl::unlimited().with_cancel(token.clone())),
        );
        token.cancel();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_from_another_thread_interrupts_a_running_solve() {
        let mut s = pigeonhole(10);
        let token = CancelToken::new();
        s.configure(
            &SolverConfig::new().with_ctl(ResourceCtl::unlimited().with_cancel(token.clone())),
        );
        let start = Instant::now();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            token.cancel();
        });
        let result = s.solve();
        canceller.join().expect("canceller thread");
        // Either the instance happened to finish first (Unsat) or the
        // token stopped it; it must not run to the multi-second solve a
        // PHP(10, 9) instance would otherwise take.
        if result == SolveResult::Unknown {
            assert_eq!(s.last_interrupt(), Some(Interrupt::Cancelled));
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "cancellation must stop the solve promptly"
        );
    }

    #[test]
    fn verdicts_clear_the_last_interrupt() {
        // A solve that trips the budget...
        let mut hard = pigeonhole(7);
        hard.configure(&SolverConfig::new().with_budget(Budget::unlimited().with_conflicts(1)));
        assert_eq!(hard.solve(), SolveResult::Unknown);
        assert!(hard.last_interrupt().is_some());
        // ...then completes once the limit is lifted: reason cleared.
        hard.configure(&SolverConfig::new());
        assert_eq!(hard.solve(), SolveResult::Unsat);
        assert_eq!(hard.last_interrupt(), None);
    }

    #[test]
    fn completed_assumption_solves_clear_the_last_interrupt() {
        // Same invariant as above, but through the assumptions path: a
        // stale interrupt reason must not survive a solve that reached a
        // verdict under assumptions.
        let (mut s, v) = make(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        s.configure(
            &SolverConfig::new()
                .with_ctl(ResourceCtl::unlimited().with_timeout(std::time::Duration::ZERO)),
        );
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1)]),
            SolveResult::Unknown
        );
        assert!(s.last_interrupt().is_some());
        s.configure(&SolverConfig::new());
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.last_interrupt(), None, "Sat verdict clears the reason");
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        assert_eq!(s.last_interrupt(), None, "Unsat verdict clears the reason");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_forward() {
        let mut s = pigeonhole(10);
        s.set_budget(Budget::unlimited().with_conflicts(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_ctl(ResourceCtl::unlimited());
        assert_eq!(s.ctl().budget().max_conflicts(), None);
        s.set_proof_logging(true);
        assert!(s.proof_logging());
    }

    #[test]
    fn current_config_round_trips_every_knob() {
        let mut s = pigeonhole(7);
        s.configure(
            &SolverConfig::new()
                .with_budget(Budget::unlimited().with_conflicts(123))
                .with_proof_logging(true)
                .with_inprocessing(crate::InprocessConfig::default()),
        );
        let cfg = s.current_config();
        assert_eq!(cfg.ctl().budget().max_conflicts(), Some(123));
        assert!(cfg.proof_logging());
        assert!(cfg.inprocess().is_some());
        assert!(cfg.share().is_none());
        // Re-applying the captured config with one knob changed keeps
        // the proof buffer alive (logging stays on).
        s.configure(&cfg.with_budget(Budget::unlimited()));
        assert!(s.proof_logging());
        assert_eq!(s.ctl().budget().max_conflicts(), None);
    }

    #[test]
    fn generous_deadline_does_not_change_the_verdict() {
        let mut plain = pigeonhole(7);
        let mut governed = pigeonhole(7);
        governed.configure(
            &SolverConfig::new().with_ctl(
                ResourceCtl::unlimited().with_timeout(std::time::Duration::from_secs(3600)),
            ),
        );
        assert_eq!(plain.solve(), governed.solve());
        assert_eq!(governed.last_interrupt(), None);
    }

    #[test]
    fn cloned_solvers_share_the_cancel_token() {
        let token = CancelToken::new();
        let mut a = pigeonhole(10);
        a.configure(
            &SolverConfig::new().with_ctl(ResourceCtl::unlimited().with_cancel(token.clone())),
        );
        let mut b = a.clone();
        token.cancel();
        assert_eq!(a.solve(), SolveResult::Unknown);
        assert_eq!(b.solve(), SolveResult::Unknown);
        assert_eq!(b.last_interrupt(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn incremental_clause_addition() {
        let (mut s, v) = make(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause(&[lit(&v, -3)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let (mut s, v) = make(2);
        assert!(s.add_clause(&[lit(&v, 1), lit(&v, -1)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let (mut s, v) = make(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -1)]);
        s.add_clause(&[lit(&v, -2), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances around the phase
        // transition; verify SAT answers against the model.
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..20 {
            let n = 30;
            let m = 120 + round;
            let (mut s, v) = make(n);
            let mut cls = Vec::new();
            for _ in 0..m {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as usize;
                    let neg = next() % 2 == 1;
                    lits.push(Lit::new(v[var], neg));
                }
                cls.push(lits.clone());
                s.add_clause(&lits);
            }
            if s.solve() == SolveResult::Sat {
                for c in &cls {
                    assert!(
                        c.iter().any(|&l| s.model_lit(l) == Some(true)),
                        "model violates clause {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 = 1 -> x2 = 0, x3 = 1.
        let (mut s, v) = make(3);
        let xor_clauses = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause(&[a, b]);
            s.add_clause(&[!a, !b]);
        };
        xor_clauses(&mut s, lit(&v, 1), lit(&v, 2));
        xor_clauses(&mut s, lit(&v, 2), lit(&v, 3));
        s.add_clause(&[lit(&v, 1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(false));
        assert_eq!(s.model_value(v[2]), Some(true));
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, v) = make(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        s.solve();
        s.solve();
        assert_eq!(s.stats().solves, 2);
    }

    /// The parallel oracle layer moves solvers onto worker threads; this
    /// fails to compile if interior non-`Send` state (e.g. `Rc`) sneaks
    /// into the solver.
    #[test]
    fn solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
        assert_send::<Budget>();
        assert_send::<SolveResult>();
    }

    #[test]
    fn proof_logging_records_premises_and_conclusion() {
        let (mut s, v) = make(2);
        s.configure(&SolverConfig::new().with_proof_logging(true));
        assert!(s.proof_logging());
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -1)]);
        s.add_clause(&[lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat certificate");
        assert_eq!(cert.premises.len(), 3);
        assert!(cert.conclusion.is_empty());
        assert!(cert.assumptions.is_empty());
    }

    #[test]
    fn certificate_is_absent_for_sat_answers() {
        let (mut s, v) = make(2);
        s.configure(&SolverConfig::new().with_proof_logging(true));
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.certificate().is_none());
        // A later Unsat answer on the same solver does produce one.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        assert!(s.certificate().is_some());
    }

    #[test]
    fn assumption_core_consists_of_negated_assumptions() {
        let (mut s, v) = make(3);
        s.configure(&SolverConfig::new().with_proof_logging(true));
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        let a = [lit(&v, 1), lit(&v, -3)];
        assert_eq!(s.solve_with_assumptions(&a), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat certificate");
        assert!(!cert.conclusion.is_empty());
        for l in cert.conclusion {
            assert!(cert.assumptions.contains(&!*l), "{l:?} not an assumption");
        }
    }

    #[test]
    fn proof_logging_snapshots_existing_clauses() {
        let (mut s, v) = make(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2)]); // becomes a root-trail unit
        s.configure(&SolverConfig::new().with_proof_logging(true));
        s.add_clause(&[lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat certificate");
        // Snapshot: binary clause + the unit from the trail + the new unit.
        assert!(cert.premises.len() >= 3);
        assert!(cert.conclusion.is_empty());
    }

    #[test]
    fn pigeonhole_proof_records_learnt_steps() {
        let n = 5;
        let h = 4;
        let (mut s, v) = make(n * h);
        s.configure(&SolverConfig::new().with_proof_logging(true));
        let p = |i: usize, j: usize| v[i * h + j].positive();
        for i in 0..n {
            let holes: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&holes);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat certificate");
        assert!(!cert.steps.is_empty(), "refutation has derivation steps");
        let drat = s.proof_drat().expect("drat text");
        assert!(drat.lines().count() >= cert.steps.len());
        assert!(drat.lines().all(|l| l.ends_with(" 0") || l == "0"));
    }

    #[test]
    fn disabling_proof_logging_discards_the_buffer() {
        let (mut s, v) = make(1);
        s.configure(&SolverConfig::new().with_proof_logging(true));
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.configure(&SolverConfig::new().with_proof_logging(false));
        assert!(!s.proof_logging());
        assert!(s.certificate().is_none());
        assert!(s.proof_drat().is_none());
    }

    #[test]
    fn cloned_solvers_diverge_independently() {
        let (mut a, v) = make(3);
        a.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        a.add_clause(&[lit(&v, -1), lit(&v, 3)]);
        assert_eq!(a.solve(), SolveResult::Sat);
        let mut b = a.clone();
        // Contradict var 3 only in the clone.
        b.add_clause(&[lit(&v, -3)]);
        b.add_clause(&[lit(&v, 3)]);
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert_eq!(b.solve(), SolveResult::Unsat);
        // The original is unaffected and still satisfiable.
        assert_eq!(a.solve(), SolveResult::Sat);
        // Stats diverge per instance after the clone point (both started
        // from the snapshot of one solve).
        assert_eq!(a.stats().solves, 2);
        assert_eq!(b.stats().solves, 3);
    }
}
