//! Between-solves inprocessing and shared-clause import.
//!
//! Everything here runs at decision level 0, from [`Solver::presolve`],
//! before the CDCL loop of a solve call starts. The passes are purely
//! count-budgeted (no wall clock), so an inprocessing solver stays
//! deterministic, and every database rewrite is recorded in the DRAT
//! derivation (additions before the deletions they justify), so
//! certification keeps working.
//!
//! # Proof-logging invariants
//!
//! * Before any clause is deleted, every root-trail literal not yet in
//!   the proof is re-recorded as an explicit unit `Add`. A deleted
//!   clause may be the only premise from which the checker would derive
//!   such a unit; once the unit is a step of its own, the deletion can
//!   no longer strand later steps.
//! * A strengthened clause is a fresh `Add` (it is RUP against the
//!   database that still contains the original), and only then is the
//!   original deleted.
//! * Variable-elimination resolvents are RUP while both parents are
//!   alive, so resolvents are added first, parents deleted after.
//! * Imported shared clauses are untrusted: each is re-derived by
//!   reverse unit propagation against the importer's own database and
//!   logged as a regular `Add` only when the check succeeds.

use super::*;

/// What happened to one clause fetched from the sharing ring.
enum ImportOutcome {
    /// Validated by RUP and attached (or enqueued, for units).
    Imported,
    /// Failed validation (unknown/eliminated variables, or no RUP
    /// conflict); dropped.
    Rejected,
    /// Already satisfied at the root, or tautological; nothing to do.
    Redundant,
}

impl Solver {
    /// The solve-entry hook: inprocessing (when configured and the
    /// database changed since the last pass) followed by shared-clause
    /// import (when a lane is attached). May discover root-level
    /// unsatisfiability, in which case `self.ok` turns false.
    pub(super) fn presolve(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        if let Some(cfg) = self.inprocess {
            let stamp = (self.num_original, self.trail.len());
            if self.inprocess_stamp != Some(stamp) {
                self.inprocess_pass(cfg);
                if self.ok {
                    self.inprocess_stamp = Some((self.num_original, self.trail.len()));
                }
            }
        }
        if self.ok && self.share.is_some() {
            self.import_shared();
        }
    }

    fn inprocess_pass(&mut self, cfg: InprocessConfig) {
        let timer = axmc_obs::enabled().then(|| axmc_obs::span("sat.inprocess.time_us"));
        self.log_new_root_units();
        let (removed, stripped) = self.remove_satisfied();
        let (subsumed, strengthened) = if self.ok {
            self.subsume_pass(cfg.subsumption_checks)
        } else {
            (0, 0)
        };
        let vivified = if self.ok {
            let slice = cfg
                .vivify_propagations
                .min(self.ctl.budget().max_propagations().unwrap_or(u64::MAX));
            self.vivify_pass(slice, cfg.vivify_max_len)
        } else {
            0
        };
        let eliminated = if self.ok { self.eliminate_marked() } else { 0 };
        if self.ok {
            self.log_new_root_units();
        }
        self.collect_garbage();
        if let Some(t) = timer {
            t.finish();
            axmc_obs::counter("sat.inprocess.removed").add(removed);
            axmc_obs::counter("sat.inprocess.strengthened").add(strengthened + stripped);
            axmc_obs::counter("sat.inprocess.subsumed").add(subsumed);
            axmc_obs::counter("sat.inprocess.vivified").add(vivified);
            axmc_obs::counter("sat.inprocess.eliminated").add(eliminated);
        }
    }

    /// Records every root-trail literal the proof does not yet hold as
    /// an explicit unit `Add` step (trivially RUP: the units are
    /// propagation consequences of the live database).
    fn log_new_root_units(&mut self) {
        let Some(log) = self.proof.as_mut() else {
            return;
        };
        for &l in &self.trail[log.root_units_logged..] {
            log.steps.push(ProofStep::Add(vec![l]));
        }
        log.root_units_logged = self.trail.len();
    }

    /// Adds a clause derived from the existing database (strengthening,
    /// resolvent, validated import): logged as a derivation step, not a
    /// premise, and otherwise treated exactly like a problem clause.
    fn add_derived_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        if self.proof.is_some() {
            self.log_step(ProofStep::Add(lits.to_vec()));
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut filtered = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.alloc_clause(filtered, false);
                true
            }
        }
    }

    /// Replaces a clause's literals with a shorter (or equal) set, in
    /// place in the arena. The caller is responsible for keeping the
    /// watch invariant intact (the first two new literals must be the
    /// watched, non-false ones).
    fn replace_lits(&mut self, cref: u32, new_lits: &[Lit]) {
        let (s, n) = {
            let c = &self.clauses[cref as usize];
            (c.start as usize, c.len as usize)
        };
        debug_assert!(!new_lits.is_empty() && new_lits.len() <= n);
        self.garbage += n - new_lits.len();
        self.arena[s..s + new_lits.len()].copy_from_slice(new_lits);
        self.clauses[cref as usize].len = new_lits.len() as u32;
    }

    /// Deletes a clause: logs the DRAT deletion, marks it deleted and
    /// frees its literals (watchers are dropped lazily by propagation).
    /// Must never be called on a locked clause — conflict analysis reads
    /// reason-clause literals.
    fn delete_clause(&mut self, cref: u32) {
        debug_assert!(!self.is_locked(cref));
        let learnt = self.clauses[cref as usize].learnt;
        if self.proof.is_some() {
            let lits = self.lits(cref).to_vec();
            self.log_step(ProofStep::Delete(lits));
        }
        let c = &mut self.clauses[cref as usize];
        self.garbage += c.len as usize;
        c.deleted = true;
        c.len = 0;
        if learnt {
            self.stats.removed += 1;
        } else {
            self.num_original -= 1;
        }
    }

    /// Removes clauses satisfied at the root and strips root-false
    /// literals from problem clauses. Returns `(removed, stripped)`.
    fn remove_satisfied(&mut self) -> (u64, u64) {
        let mut removed = 0u64;
        let mut stripped = 0u64;
        for cref in 0..self.clauses.len() as u32 {
            let ci = cref as usize;
            if self.clauses[ci].deleted || self.clauses[ci].len == 0 {
                continue;
            }
            if self.is_locked(cref) {
                continue;
            }
            let mut satisfied = false;
            let mut num_false = 0usize;
            for &l in self.lits(cref) {
                match self.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => num_false += 1,
                    LBool::Undef => {}
                }
            }
            if satisfied {
                self.delete_clause(cref);
                removed += 1;
            } else if num_false > 0 && !self.clauses[ci].learnt {
                // After full root propagation an unsatisfied clause has
                // non-false watches at positions 0 and 1; filtering
                // preserves order, so the watch invariant survives an
                // in-place strip.
                let new_lits: Vec<Lit> = self
                    .lits(cref)
                    .iter()
                    .copied()
                    .filter(|&l| self.value_lit(l) != LBool::False)
                    .collect();
                debug_assert!(new_lits.len() >= 2);
                if self.proof.is_some() {
                    let old = self.lits(cref).to_vec();
                    self.log_step(ProofStep::Add(new_lits.clone()));
                    self.log_step(ProofStep::Delete(old));
                }
                self.replace_lits(cref, &new_lits);
                stripped += 1;
            }
        }
        (removed, stripped)
    }

    /// Forward subsumption and self-subsuming resolution over the
    /// problem clauses, capped at `max_checks` subset tests. Returns
    /// `(subsumed, strengthened)`.
    fn subsume_pass(&mut self, max_checks: u64) -> (u64, u64) {
        let mut subsumed = 0u64;
        let mut strengthened = 0u64;
        let mut cand: Vec<u32> = Vec::new();
        for cref in 0..self.clauses.len() as u32 {
            let c = &self.clauses[cref as usize];
            if c.deleted || c.learnt || c.len < 2 || self.is_locked(cref) {
                continue;
            }
            cand.push(cref);
        }
        let mut occur: Vec<Vec<u32>> = vec![Vec::new(); self.assigns.len() * 2];
        let mut lits_of: Vec<Vec<Lit>> = Vec::with_capacity(cand.len());
        let mut sig_of: Vec<u64> = Vec::with_capacity(cand.len());
        for (i, &cref) in cand.iter().enumerate() {
            let mut ls = self.lits(cref).to_vec();
            ls.sort_unstable();
            let mut sig = 0u64;
            for &l in &ls {
                sig |= 1u64 << (l.var().index() % 64);
                occur[l.code() as usize].push(i as u32);
            }
            lits_of.push(ls);
            sig_of.push(sig);
        }
        let mut dead = vec![false; cand.len()];
        let mut checks = 0u64;
        'all: for i in 0..cand.len() {
            if dead[i] {
                continue;
            }
            let ls = lits_of[i].clone();
            let sig = sig_of[i];
            // Forward subsumption, scanning the least popular literal's
            // occurrence list: delete every D ⊇ C.
            let min_lit = *ls
                .iter()
                .min_by_key(|l| occur[l.code() as usize].len())
                .expect("clauses have at least two literals");
            for &j in &occur[min_lit.code() as usize] {
                let j = j as usize;
                if j == i || dead[j] {
                    continue;
                }
                checks += 1;
                if checks > max_checks {
                    break 'all;
                }
                if lits_of[j].len() < ls.len() || sig & !sig_of[j] != 0 {
                    continue;
                }
                if is_sorted_subset(&ls, &lits_of[j]) && !self.is_locked(cand[j]) {
                    self.delete_clause(cand[j]);
                    dead[j] = true;
                    subsumed += 1;
                }
            }
            // Self-subsuming resolution: when (C \ {l}) ⊆ D and !l ∈ D,
            // D can drop !l (the resolvent of C and D on l subsumes D).
            for &l in &ls {
                for &j in &occur[(!l).code() as usize] {
                    let j = j as usize;
                    if j == i || dead[j] {
                        continue;
                    }
                    checks += 1;
                    if checks > max_checks {
                        break 'all;
                    }
                    if lits_of[j].len() < ls.len() || sig & !sig_of[j] != 0 {
                        continue;
                    }
                    if !strengthens(&ls, l, &lits_of[j]) || self.is_locked(cand[j]) {
                        continue;
                    }
                    let new_lits: Vec<Lit> =
                        lits_of[j].iter().copied().filter(|&x| x != !l).collect();
                    self.add_derived_clause(&new_lits);
                    if !self.ok {
                        return (subsumed, strengthened);
                    }
                    if !self.clauses[cand[j] as usize].deleted && !self.is_locked(cand[j]) {
                        self.delete_clause(cand[j]);
                    }
                    dead[j] = true;
                    strengthened += 1;
                }
            }
        }
        (subsumed, strengthened)
    }

    /// Clause vivification: for each problem clause, assert the negation
    /// of its literals one at a time on a scratch decision level; a
    /// propagation conflict (or an implied literal) proves a shorter
    /// clause. Budgeted by propagation count. Returns clauses shortened.
    fn vivify_pass(&mut self, max_props: u64, max_len: usize) -> u64 {
        let mut vivified = 0u64;
        let start_props = self.stats.propagations;
        let crefs: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&r| {
                let c = &self.clauses[r as usize];
                !c.deleted && !c.learnt && c.len >= 3 && c.len as usize <= max_len
            })
            .collect();
        for cref in crefs {
            if !self.ok {
                return vivified;
            }
            if self.stats.propagations - start_props >= max_props {
                break;
            }
            let ci = cref as usize;
            if self.clauses[ci].deleted || self.is_locked(cref) {
                continue;
            }
            let lits = self.lits(cref).to_vec();
            // Earlier strengthenings may have produced new root units.
            if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
                self.delete_clause(cref);
                continue;
            }
            debug_assert_eq!(self.decision_level(), 0);
            self.trail_lim.push(self.trail.len());
            let mut kept: Vec<Lit> = Vec::new();
            for &l in &lits {
                match self.value_lit(l) {
                    LBool::True => {
                        // The kept prefix implies l: C shrinks to the
                        // prefix plus l.
                        kept.push(l);
                        break;
                    }
                    LBool::False => continue, // l is redundant in C
                    LBool::Undef => {
                        kept.push(l);
                        self.unchecked_enqueue(!l, NO_REASON);
                        if self.propagate().is_some() {
                            break;
                        }
                    }
                }
            }
            self.cancel_until(0);
            if kept.len() < lits.len() && !kept.is_empty() {
                self.add_derived_clause(&kept);
                if !self.ok {
                    return vivified;
                }
                if !self.clauses[ci].deleted && !self.is_locked(cref) {
                    self.delete_clause(cref);
                }
                vivified += 1;
            }
        }
        vivified
    }

    /// Bounded variable elimination, restricted to variables the caller
    /// marked via [`Solver::mark_eliminable`]. A variable is eliminated
    /// only when its resolvent count does not exceed its occurrence
    /// count. Returns variables eliminated.
    fn eliminate_marked(&mut self) -> u64 {
        let mut eliminated = 0u64;
        let vars: Vec<u32> = (0..self.assigns.len() as u32)
            .filter(|&v| self.eliminable[v as usize] && !self.eliminated[v as usize])
            .collect();
        for vi in vars {
            if !self.ok {
                return eliminated;
            }
            if self.assigns[vi as usize] != LBool::Undef {
                continue;
            }
            let v = Var::new(vi);
            let mut pos: Vec<u32> = Vec::new();
            let mut neg: Vec<u32> = Vec::new();
            let mut learnt_occ: Vec<u32> = Vec::new();
            let mut blocked = false;
            for cref in 0..self.clauses.len() as u32 {
                let c = &self.clauses[cref as usize];
                if c.deleted {
                    continue;
                }
                let cl = &self.arena[c.start as usize..(c.start + c.len) as usize];
                let has_pos = cl.contains(&v.positive());
                let has_neg = cl.contains(&v.negative());
                if !has_pos && !has_neg {
                    continue;
                }
                if self.is_locked(cref) {
                    blocked = true;
                    break;
                }
                if c.learnt {
                    learnt_occ.push(cref);
                } else if has_pos {
                    pos.push(cref);
                } else {
                    neg.push(cref);
                }
            }
            if blocked {
                continue;
            }
            let limit = pos.len() + neg.len();
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'res: for &p in &pos {
                for &n in &neg {
                    if let Some(r) = resolve_on(self.lits(p), self.lits(n), v) {
                        resolvents.push(r);
                        if resolvents.len() > limit {
                            too_many = true;
                            break 'res;
                        }
                    }
                }
            }
            if too_many {
                continue;
            }
            // Learnt clauses over v must go first: after elimination the
            // originals that justified them are gone, so a surviving
            // learnt could force v against its reconstruction.
            for &r in &learnt_occ {
                self.delete_clause(r);
            }
            let saved: Vec<Vec<Lit>> = pos
                .iter()
                .chain(neg.iter())
                .map(|&r| self.lits(r).to_vec())
                .collect();
            for r in &resolvents {
                self.add_derived_clause(r);
                if !self.ok {
                    return eliminated;
                }
            }
            if self.assigns[vi as usize] != LBool::Undef {
                // Resolvent propagation assigned v; its clauses are now
                // satisfied or strengthened by the next pass instead.
                continue;
            }
            for &r in pos.iter().chain(neg.iter()) {
                if !self.clauses[r as usize].deleted && !self.is_locked(r) {
                    self.delete_clause(r);
                }
            }
            self.elim_stack.push((v, saved));
            self.eliminated[vi as usize] = true;
            self.num_eliminated += 1;
            eliminated += 1;
        }
        eliminated
    }

    /// Extends a model over eliminated variables by replaying the
    /// elimination stack backwards: each variable is set so every one of
    /// its saved clauses is satisfied (a value exists because the model
    /// satisfies all resolvents).
    pub(super) fn extend_model(&mut self) {
        // Iterate an owned stack so the model can be mutated freely.
        let stack = std::mem::take(&mut self.elim_stack);
        for (v, saved) in stack.iter().rev() {
            let vi = v.index() as usize;
            if self.model[vi] != LBool::Undef {
                continue;
            }
            let mut value = false;
            for clause in saved {
                let mut sat_by_other = false;
                let mut needed: Option<bool> = None;
                for &l in clause {
                    if l.var() == *v {
                        needed = Some(!l.is_negative());
                        continue;
                    }
                    let val = self.model[l.var().index() as usize].negate_if(l.is_negative());
                    if val == LBool::True {
                        sat_by_other = true;
                        break;
                    }
                }
                if !sat_by_other {
                    if let Some(b) = needed {
                        value = b;
                    }
                }
            }
            self.model[vi] = LBool::from_bool(value);
        }
        self.elim_stack = stack;
    }

    /// Drains the sharing ring and runs every foreign clause through RUP
    /// validation.
    fn import_shared(&mut self) {
        let mut incoming: Vec<std::sync::Arc<[Lit]>> = Vec::new();
        let shared_vars = {
            let h = self.share.as_mut().expect("import without a share lane");
            let ring = h.ring.clone();
            ring.fetch_from(&mut h.cursor, h.lane, &mut incoming);
            h.shared_vars
        };
        if incoming.is_empty() {
            return;
        }
        let mut imported = 0u64;
        let mut rejected = 0u64;
        for lits in incoming {
            if !self.ok {
                break;
            }
            match self.try_import(&lits, shared_vars) {
                ImportOutcome::Imported => imported += 1,
                ImportOutcome::Rejected => rejected += 1,
                ImportOutcome::Redundant => {}
            }
        }
        if axmc_obs::enabled() {
            axmc_obs::counter("sat.share.imported").add(imported);
            axmc_obs::counter("sat.share.rejected").add(rejected);
        }
    }

    /// Validates one foreign clause by reverse unit propagation on a
    /// scratch decision level and attaches it on success.
    fn try_import(&mut self, lits: &[Lit], shared_vars: usize) -> ImportOutcome {
        debug_assert_eq!(self.decision_level(), 0);
        if lits.is_empty() {
            return ImportOutcome::Rejected;
        }
        for &l in lits {
            let vi = l.var().index() as usize;
            if vi >= shared_vars || vi >= self.assigns.len() || self.eliminated[vi] {
                return ImportOutcome::Rejected;
            }
        }
        // Root-level triage: drop satisfied clauses, strip false
        // literals, dedup.
        let mut undef: Vec<Lit> = Vec::new();
        for &l in lits {
            match self.value_lit(l) {
                LBool::True => return ImportOutcome::Redundant,
                LBool::False => {}
                LBool::Undef => {
                    if !undef.contains(&l) {
                        undef.push(l);
                    }
                }
            }
        }
        if undef.is_empty() {
            // Entirely false at root: a sound clause here would mean the
            // database is already unsatisfiable, which propagation would
            // have caught — no RUP evidence, reject.
            return ImportOutcome::Rejected;
        }
        if undef.iter().any(|&l| undef.contains(&!l)) {
            return ImportOutcome::Redundant; // tautology
        }
        // RUP check: assert the negation on a scratch level; accept only
        // if propagation refutes it.
        self.trail_lim.push(self.trail.len());
        let mut conflicted = false;
        for &l in &undef {
            match self.value_lit(l) {
                LBool::False => continue, // already falsified by the prefix
                LBool::True => {
                    // The prefix implies l — enqueueing !l would conflict.
                    conflicted = true;
                    break;
                }
                LBool::Undef => {
                    self.unchecked_enqueue(!l, NO_REASON);
                    if self.propagate().is_some() {
                        conflicted = true;
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        if !conflicted {
            return ImportOutcome::Rejected;
        }
        // Log the root-simplified form: it is RUP exactly as validated.
        if self.proof.is_some() {
            self.log_step(ProofStep::Add(undef.clone()));
        }
        if undef.len() == 1 {
            self.unchecked_enqueue(undef[0], NO_REASON);
            if self.propagate().is_some() {
                self.ok = false;
            }
        } else {
            let lbd = undef.len() as u32;
            let cref = self.alloc_clause(undef, true);
            self.clauses[cref as usize].lbd = lbd;
        }
        ImportOutcome::Imported
    }
}

/// The resolvent of `a` and `b` on `v` (with `v` positive in `a`), or
/// `None` if it is tautological.
fn resolve_on(a: &[Lit], b: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(a.len() + b.len() - 2);
    out.extend(a.iter().copied().filter(|l| l.var() != v));
    out.extend(b.iter().copied().filter(|l| l.var() != v));
    out.sort_unstable();
    out.dedup();
    for w in out.windows(2) {
        if w[1] == !w[0] {
            return None;
        }
    }
    Some(out)
}

/// Subset test over sorted literal slices.
fn is_sorted_subset(small: &[Lit], big: &[Lit]) -> bool {
    let mut it = big.iter();
    'outer: for &x in small {
        for &y in it.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

/// `(c \ {l}) ⊆ d` and `!l ∈ d`, over sorted `c`/`d`: the condition for
/// `c` to strengthen `d` by self-subsuming resolution on `l`.
fn strengthens(c: &[Lit], l: Lit, d: &[Lit]) -> bool {
    if d.binary_search(&!l).is_err() {
        return false;
    }
    c.iter().all(|&x| x == l || d.binary_search(&x).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::share::ShareRing;
    use crate::SolveResult;

    fn make(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    fn inprocessing() -> SolverConfig {
        SolverConfig::new().with_inprocessing(InprocessConfig::default())
    }

    #[test]
    fn satisfied_and_subsumed_clauses_are_removed() {
        let (mut s, v) = make(4);
        let (a, b, c, d) = (
            v[0].positive(),
            v[1].positive(),
            v[2].positive(),
            v[3].positive(),
        );
        s.add_clause(&[a, b]); // satisfied once the unit below lands
        s.add_clause(&[b, c, d]); // subsumed by [b, c]
        s.add_clause(&[b, c]);
        s.add_clause(&[a]);
        assert_eq!(s.num_clauses(), 3);
        s.configure(&inprocessing());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.num_clauses(), 1, "only [b, c] survives");
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        let (mut s, v) = make(3);
        let (a, b, c) = (v[0].positive(), v[1].positive(), v[2].positive());
        // C = [a, b] strengthens D = [!a, b, c] to [b, c].
        s.add_clause(&[a, b]);
        s.add_clause(&[!a, b, c]);
        s.configure(&inprocessing().with_proof_logging(true));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.num_clauses(), 2);
        // The strengthened clause shows up as an Add/Delete pair in the
        // recorded derivation even though the answer was Sat.
        let drat = s.proof_drat().expect("logging is on");
        assert!(
            drat.lines().any(|l| l.starts_with("d ")),
            "strengthening logged a deletion:\n{drat}"
        );
    }

    #[test]
    fn inprocessing_preserves_verdicts_on_random_3sat() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..15 {
            let n = 25;
            let m = 95 + round;
            let (mut plain, pv) = make(n);
            let (mut inproc, iv) = make(n);
            inproc.configure(&inprocessing());
            for _ in 0..m {
                let mut lits_p = Vec::new();
                let mut lits_i = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as usize;
                    let neg = next() % 2 == 1;
                    lits_p.push(Lit::new(pv[var], neg));
                    lits_i.push(Lit::new(iv[var], neg));
                }
                plain.add_clause(&lits_p);
                inproc.add_clause(&lits_i);
            }
            assert_eq!(plain.solve(), inproc.solve(), "round {round}");
            // Incremental follow-up on the simplified database.
            let extra_p = [Lit::new(pv[0], false), Lit::new(pv[1], true)];
            let extra_i = [Lit::new(iv[0], false), Lit::new(iv[1], true)];
            assert_eq!(
                plain.solve_with_assumptions(&extra_p),
                inproc.solve_with_assumptions(&extra_i),
                "round {round} under assumptions"
            );
        }
    }

    #[test]
    fn unsat_with_inprocessing_still_certifies() {
        let n = 5;
        let h = 4;
        let (mut s, v) = make(n * h);
        s.configure(&inprocessing().with_proof_logging(true));
        let p = |i: usize, j: usize| v[i * h + j].positive();
        for i in 0..n {
            let holes: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&holes);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat certificate");
        assert!(cert.conclusion.is_empty());
        assert!(!cert.steps.is_empty());
    }

    #[test]
    fn marked_variable_is_eliminated_and_model_reconstructed() {
        let (mut s, v) = make(3);
        let (a, x, b) = (v[0].positive(), v[1].positive(), v[2].positive());
        // x is a pure buffer: a -> x -> b. Resolvent: [!a..,] — here
        // clauses [a, x] and [!x, b] resolve to [a, b].
        s.add_clause(&[a, x]);
        s.add_clause(&[!x, b]);
        s.mark_eliminable(x.var());
        s.configure(&inprocessing());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.is_eliminated(x.var()));
        // The reconstructed model must satisfy the *original* clauses.
        let ma = s.model_lit(a).unwrap_or(false);
        let mx = s.model_lit(x).expect("eliminated var has a model value");
        let mb = s.model_lit(b).unwrap_or(false);
        assert!(ma || mx, "model violates [a, x]");
        assert!(!mx || mb, "model violates [!x, b]");
    }

    #[test]
    #[should_panic(expected = "assumption on eliminated variable")]
    fn assumptions_on_eliminated_variables_panic() {
        let (mut s, v) = make(3);
        let (a, x, b) = (v[0].positive(), v[1].positive(), v[2].positive());
        s.add_clause(&[a, x]);
        s.add_clause(&[!x, b]);
        s.mark_eliminable(x.var());
        s.configure(&inprocessing());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.is_eliminated(x.var()));
        let _ = s.solve_with_assumptions(&[x]);
    }

    #[test]
    fn valid_shared_clauses_are_imported() {
        let ring = ShareRing::new();
        let (mut s, v) = make(3);
        let (x1, x2, x3) = (v[0].positive(), v[1].positive(), v[2].positive());
        s.add_clause(&[x1, x2]);
        s.add_clause(&[!x1, x2]);
        s.configure(&SolverConfig::new().with_share(ring.handle(0, 3)));
        // [x2, x3] is RUP: asserting !x2 and !x3 propagates a conflict
        // through the two clauses above.
        ring.publish(1, &[x2, x3]);
        let learnt_before = s.stats().learnt;
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(
            s.stats().learnt,
            learnt_before + 1,
            "the validated import is attached as a learnt clause"
        );
    }

    #[test]
    fn corrupted_shared_clauses_are_rejected() {
        let ring = ShareRing::new();
        let (mut s, v) = make(2);
        let (x1, x2) = (v[0].positive(), v[1].positive());
        s.add_clause(&[x1, x2]);
        s.add_clause(&[!x1, x2]);
        s.configure(&SolverConfig::new().with_share(ring.handle(0, 2)));
        // The database implies x2; a corrupted lane publishes !x2. RUP
        // validation (assert x2, propagate) finds no conflict: rejected.
        ring.publish(1, &[!x2]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(
            s.model_lit(x2),
            Some(true),
            "the corrupted unit must not have been attached"
        );
        // And the verdict math still works: adding the real implication
        // keeps the instance satisfiable.
        s.add_clause(&[x2]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn own_lane_clauses_are_not_reimported() {
        let ring = ShareRing::new();
        let (mut s, v) = make(2);
        let (x1, x2) = (v[0].positive(), v[1].positive());
        s.add_clause(&[x1, x2]);
        s.add_clause(&[!x1, x2]);
        s.configure(&SolverConfig::new().with_share(ring.handle(0, 2)));
        ring.publish(0, &[x2]); // own lane: must be skipped
        let learnt_before = s.stats().learnt;
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().learnt, learnt_before);
    }

    #[test]
    fn inprocessing_skips_unchanged_databases() {
        let (mut s, v) = make(3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        s.configure(&inprocessing());
        assert_eq!(s.solve(), SolveResult::Sat);
        let stamp = s.inprocess_stamp;
        assert!(stamp.is_some());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.inprocess_stamp, stamp, "no re-pass on a static DB");
    }
}
