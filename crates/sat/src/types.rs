//! Basic SAT types: variables, literals and three-valued booleans.

use std::fmt;

/// A SAT variable, numbered from 0.
///
/// # Examples
///
/// ```
/// use axmc_sat::{Var, Lit};
///
/// let v = Var::new(4);
/// assert_eq!(v.positive(), Lit::positive(v));
/// assert_eq!(v.positive().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the index of this variable.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub const fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub const fn negative(self) -> Lit {
        Lit::negative(self)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A SAT literal (`2 * var + sign` packing).
///
/// # Examples
///
/// ```
/// use axmc_sat::{Var, Lit};
///
/// let a = Lit::positive(Var::new(0));
/// assert_eq!(!a, Lit::negative(Var::new(0)));
/// assert!((!a).is_negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    #[inline]
    pub const fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    #[inline]
    pub const fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal from a variable and a sign flag (`true` = negated).
    #[inline]
    pub const fn new(var: Var, negative: bool) -> Self {
        Lit((var.0 << 1) | negative as u32)
    }

    /// Creates a literal from its packed code.
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the packed code (`2 * var + sign`).
    #[inline]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the variable of this literal.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Parses a DIMACS-style integer literal (`3` / `-3`, 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal 0 is the clause terminator");
        let var = Var::new((dimacs.unsigned_abs() - 1) as u32);
        Lit::new(var, dimacs < 0)
    }

    /// Converts to a DIMACS-style integer literal (1-based, sign = polarity).
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!x{}", self.var().index())
        } else {
            write!(f, "x{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A three-valued boolean: true, false or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts from a concrete boolean.
    #[inline]
    pub const fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns the concrete value, or `None` if unassigned.
    #[inline]
    pub const fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Three-valued exclusive or with a sign: flips True/False when
    /// `negate` holds, leaves Undef untouched.
    #[inline]
    pub const fn negate_if(self, negate: bool) -> Self {
        match (self, negate) {
            (LBool::True, true) => LBool::False,
            (LBool::False, true) => LBool::True,
            (v, _) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let v = Var::new(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(v.negative().var(), v);
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(1), Var::new(0).positive());
        assert_eq!(Lit::from_dimacs(-5), Var::new(4).negative());
        assert_eq!(Lit::from_dimacs(-5).to_dimacs(), -5);
        assert_eq!(Lit::from_dimacs(7).to_dimacs(), 7);
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate_if(true), LBool::False);
        assert_eq!(LBool::Undef.negate_if(true), LBool::Undef);
        assert_eq!(LBool::False.to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
    }
}
