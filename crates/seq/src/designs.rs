//! Sequential design templates with pluggable combinational components.
//!
//! Each template builds a sequential AIG around a combinational component
//! (an adder, multiplier or incrementer given as a gate-level netlist).
//! Instantiating the same template once with the exact component and once
//! with an approximate one yields the golden/approximated circuit pair
//! whose sequential error the core engines determine.
//!
//! The templates cover the structural classes that drive sequential error
//! behaviour: **feedback** (accumulator, MAC, IIR — errors can build up),
//! **feed-forward depth** (FIR, moving average — errors are transient),
//! and **pure pipelines** (registered ALU — errors pass through once).

use axmc_aig::{Aig, Lit, Word};
use axmc_circuit::Netlist;

/// Instantiates a combinational component inside `aig` over the given
/// input literals, returning its output literals.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the component's input count.
pub fn instantiate(aig: &mut Aig, component: &Netlist, inputs: &[Lit]) -> Vec<Lit> {
    assert_eq!(
        inputs.len(),
        component.num_inputs(),
        "component input count mismatch"
    );
    let comp = component.to_aig();
    let roots: Vec<Lit> = comp.outputs().to_vec();
    aig.import_cone(&comp, &roots, inputs, &[])
}

fn check_adder(adder: &Netlist, width: usize) {
    assert_eq!(adder.num_inputs(), 2 * width, "adder input width");
    assert!(
        adder.num_outputs() >= width,
        "adder must produce at least {width} sum bits"
    );
}

/// An accumulator: `state <- state + input` each cycle through the given
/// `width`-bit adder (wrapping: the carry-out is dropped). Outputs the
/// `width`-bit state.
///
/// This is the canonical **error-accumulating** design: any additive bias
/// of an approximate adder compounds every cycle.
///
/// # Examples
///
/// ```
/// use axmc_circuit::generators::ripple_carry_adder;
/// use axmc_seq::accumulator;
/// use axmc_aig::Simulator;
///
/// let acc = accumulator(&ripple_carry_adder(4), 4);
/// let mut sim = Simulator::new(&acc);
/// // Feed the value 3 twice; state reads 0 then 3.
/// let three = [u64::MAX, u64::MAX, 0, 0];
/// assert_eq!(sim.step(&three)[0] & 1, 0);
/// let out = sim.step(&three);
/// assert_eq!(out[0] & 1, 1);
/// assert_eq!(out[1] & 1, 1);
/// ```
///
/// # Panics
///
/// Panics if the adder's interface does not match `width`.
pub fn accumulator(adder: &Netlist, width: usize) -> Aig {
    check_adder(adder, width);
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, width);
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    let mut comp_inputs = state.clone();
    comp_inputs.extend_from_slice(input.bits());
    let sums = instantiate(&mut aig, adder, &comp_inputs);
    for (k, &s) in sums.iter().enumerate().take(width) {
        aig.set_latch_next(first + k, s);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// An accumulator with headroom: the `input_width`-bit input is
/// zero-extended and accumulated into an `acc_width`-bit register through
/// an `acc_width`-bit adder, so no wrap-around occurs within
/// `2^(acc_width - input_width)` operations. Outputs the register.
///
/// This is the realistic form of [`accumulator`] for error-growth studies:
/// without headroom the modular distance metric saturates as soon as the
/// exact and approximate states straddle a wrap boundary.
///
/// # Panics
///
/// Panics if `acc_width < input_width` or the adder's interface does not
/// match `acc_width`.
pub fn wide_accumulator(adder: &Netlist, input_width: usize, acc_width: usize) -> Aig {
    assert!(acc_width >= input_width, "need headroom");
    check_adder(adder, acc_width);
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, input_width);
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..acc_width).map(|_| aig.add_latch(false)).collect();
    let mut comp_inputs = state.clone();
    comp_inputs.extend_from_slice(input.bits());
    comp_inputs.extend(std::iter::repeat_n(Lit::FALSE, acc_width - input_width));
    let sums = instantiate(&mut aig, adder, &comp_inputs);
    for (k, &s) in sums.iter().enumerate().take(acc_width) {
        aig.set_latch_next(first + k, s);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// A multiply-accumulate unit: `acc <- acc + mult(a, b)` with a `2*width`
/// bit accumulator; outputs the accumulator.
///
/// `multiplier` is a `width × width` component (inputs `2*width`, outputs
/// `2*width`); `adder` is a `2*width`-bit component. Either (or both) may
/// be approximate. The accumulator wraps modulo `2^(2*width)`; use
/// [`mac_wide`] when headroom is wanted.
///
/// # Panics
///
/// Panics if the component interfaces do not match `width`.
pub fn mac(multiplier: &Netlist, adder: &Netlist, width: usize) -> Aig {
    mac_impl(multiplier, adder, width, 2 * width)
}

/// A multiply-accumulate unit with headroom: products are zero-extended
/// into an `acc_width`-bit accumulator (`acc_width >= 2 * width`) added
/// through an `acc_width`-bit adder, so no wrap occurs within
/// `2^(acc_width - 2*width)` operations.
///
/// # Panics
///
/// Panics if the component interfaces do not match, or
/// `acc_width < 2 * width`.
pub fn mac_wide(multiplier: &Netlist, adder: &Netlist, width: usize, acc_width: usize) -> Aig {
    assert!(acc_width >= 2 * width, "need headroom");
    mac_impl(multiplier, adder, width, acc_width)
}

fn mac_impl(multiplier: &Netlist, adder: &Netlist, width: usize, acc_width: usize) -> Aig {
    assert_eq!(multiplier.num_inputs(), 2 * width, "multiplier input width");
    assert!(
        multiplier.num_outputs() >= 2 * width,
        "multiplier must produce 2*width product bits"
    );
    check_adder(adder, acc_width);
    let mut aig = Aig::new();
    let a = Word::new_inputs(&mut aig, width);
    let b = Word::new_inputs(&mut aig, width);
    let first = aig.num_latches();
    let acc: Vec<Lit> = (0..acc_width).map(|_| aig.add_latch(false)).collect();

    let mut mul_inputs: Vec<Lit> = a.bits().to_vec();
    mul_inputs.extend_from_slice(b.bits());
    let product = instantiate(&mut aig, multiplier, &mul_inputs);

    let mut add_inputs: Vec<Lit> = acc.clone();
    add_inputs.extend_from_slice(&product[..2 * width]);
    add_inputs.extend(std::iter::repeat_n(Lit::FALSE, acc_width - 2 * width));
    let sums = instantiate(&mut aig, adder, &add_inputs);
    for (k, &s) in sums.iter().enumerate().take(acc_width) {
        aig.set_latch_next(first + k, s);
    }
    for &s in &acc {
        aig.add_output(s);
    }
    aig
}

/// A moving-sum FIR filter of the given tap count: a delay line of
/// `taps - 1` registers, with the output `x[n] + x[n-1] + … + x[n-taps+1]`
/// computed by a balanced tree of the supplied adders (each of growing
/// width, built by widening the operands with zero bits).
///
/// The adder component is `width`-bit; intermediate sums use the same
/// component on the low `width` bits plus exact zero-extension, so the
/// approximation is exercised at every tree node. The output has
/// `width + ceil(log2(taps))` bits.
///
/// This is the canonical **feed-forward** design: errors live for at most
/// `taps` cycles.
///
/// # Panics
///
/// Panics if `taps < 2` or the adder interface does not match `width`.
pub fn fir_moving_sum(adder: &Netlist, width: usize, taps: usize) -> Aig {
    assert!(taps >= 2, "need at least two taps");
    check_adder(adder, width);
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, width);

    // Delay line.
    let mut line: Vec<Vec<Lit>> = Vec::with_capacity(taps);
    line.push(input.bits().to_vec());
    let mut prev: Vec<Lit> = input.bits().to_vec();
    for _ in 1..taps {
        let first = aig.num_latches();
        let regs: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
        for (k, &p) in prev.iter().enumerate() {
            aig.set_latch_next(first + k, p);
        }
        line.push(regs.clone());
        prev = regs;
    }

    // Balanced adder tree; sums keep the component's width and track the
    // overflow bits exactly (component adds the low `width` bits, upper
    // bits are rippled exactly — the approximation affects the low part).
    let total = sum_tree(&mut aig, adder, width, &line);
    for &s in &total {
        aig.add_output(s);
    }
    aig
}

/// Sums a list of words with a balanced tree. Each pairwise addition runs
/// the component on the low `width` bits and an exact ripple on any upper
/// bits, producing one extra bit per level.
fn sum_tree(aig: &mut Aig, adder: &Netlist, width: usize, words: &[Vec<Lit>]) -> Vec<Lit> {
    let mut layer: Vec<Vec<Lit>> = words.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2 + 1);
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
                continue;
            }
            next.push(add_pair(aig, adder, width, &pair[0], &pair[1]));
        }
        layer = next;
    }
    layer.pop().expect("nonempty")
}

/// Adds two words: component on the low `width` bits, exact carry ripple
/// on the upper bits. Result is one bit wider than the wider operand.
fn add_pair(aig: &mut Aig, adder: &Netlist, width: usize, x: &[Lit], y: &[Lit]) -> Vec<Lit> {
    let w = x.len().max(y.len());
    let get = |v: &[Lit], i: usize| v.get(i).copied().unwrap_or(Lit::FALSE);
    // Component on the low `width` bits.
    let mut comp_inputs: Vec<Lit> = (0..width).map(|i| get(x, i)).collect();
    comp_inputs.extend((0..width).map(|i| get(y, i)));
    let lows = instantiate(aig, adder, &comp_inputs);
    let mut out: Vec<Lit> = lows[..width].to_vec();
    // Carry out of the component (bit `width` if present, else exact).
    let mut carry = lows.get(width).copied().unwrap_or(Lit::FALSE);
    // Exact ripple for upper bits.
    for i in width..w {
        let a = get(x, i);
        let b = get(y, i);
        let axb = aig.xor(a, b);
        let s = aig.xor(axb, carry);
        let c1 = aig.and(a, b);
        let c2 = aig.and(axb, carry);
        carry = aig.or(c1, c2);
        out.push(s);
    }
    out.push(carry);
    out
}

/// A leaky integrator (one-pole IIR): `y <- (y >> 1) + x` through the
/// supplied `width`-bit adder (wrapping). Outputs the `width`-bit state.
///
/// The shift attenuates the feedback, so injected errors decay — the
/// counterpoint to [`accumulator`].
///
/// # Panics
///
/// Panics if the adder interface does not match `width`.
pub fn leaky_integrator(adder: &Netlist, width: usize) -> Aig {
    check_adder(adder, width);
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, width);
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    // y >> 1 (logical).
    let mut shifted: Vec<Lit> = state[1..].to_vec();
    shifted.push(Lit::FALSE);
    let mut comp_inputs = shifted;
    comp_inputs.extend_from_slice(input.bits());
    let sums = instantiate(&mut aig, adder, &comp_inputs);
    for (k, &s) in sums.iter().enumerate().take(width) {
        aig.set_latch_next(first + k, s);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// A leaky integrator with headroom: `y <- (y >> 1) + x` where the
/// `input_width`-bit input is zero-extended into a `state_width`-bit
/// register through a `state_width`-bit adder. With one bit of headroom
/// (`state_width = input_width + 1`) the state never wraps, since the
/// fixpoint of `y/2 + x_max` is `2 * x_max`.
///
/// # Panics
///
/// Panics if `state_width < input_width` or the adder's interface does
/// not match `state_width`.
pub fn wide_leaky_integrator(adder: &Netlist, input_width: usize, state_width: usize) -> Aig {
    assert!(state_width >= input_width, "need headroom");
    check_adder(adder, state_width);
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, input_width);
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..state_width).map(|_| aig.add_latch(false)).collect();
    let mut shifted: Vec<Lit> = state[1..].to_vec();
    shifted.push(Lit::FALSE);
    let mut comp_inputs = shifted;
    comp_inputs.extend_from_slice(input.bits());
    comp_inputs.extend(std::iter::repeat_n(Lit::FALSE, state_width - input_width));
    let sums = instantiate(&mut aig, adder, &comp_inputs);
    for (k, &s) in sums.iter().enumerate().take(state_width) {
        aig.set_latch_next(first + k, s);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// A counter with enable: `state <- inc(state)` when the enable input is
/// high, else hold. `incrementer` maps `width` bits to at least `width`
/// bits (`a + 1`). Outputs the state.
///
/// # Panics
///
/// Panics if the incrementer interface does not match `width`.
pub fn counter(incrementer: &Netlist, width: usize) -> Aig {
    assert_eq!(incrementer.num_inputs(), width, "incrementer input width");
    assert!(
        incrementer.num_outputs() >= width,
        "incrementer must produce at least {width} bits"
    );
    let mut aig = Aig::new();
    let enable = aig.add_input();
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    let inced = instantiate(&mut aig, incrementer, &state);
    for k in 0..width {
        let next = aig.mux(enable, inced[k], state[k]);
        aig.set_latch_next(first + k, next);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// A running-maximum tracker: `state <- if cmp(input, state) then input
/// else state`, where `cmp` is a two-operand comparator component whose
/// output 0 decides "first operand greater". Outputs the state.
///
/// With an exact comparator this tracks the true maximum of the input
/// history. With a truncated comparator it can lag by the ignored low
/// bits — and, unusually for a feedback design, that error is **bounded**
/// (a good k-induction target).
///
/// # Panics
///
/// Panics if the comparator's interface does not match `width`.
pub fn max_tracker(comparator: &Netlist, width: usize) -> Aig {
    assert_eq!(comparator.num_inputs(), 2 * width, "comparator input width");
    assert!(
        comparator.num_outputs() >= 1,
        "comparator needs a gt output"
    );
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, width);
    let first = aig.num_latches();
    let state: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    let mut cmp_inputs: Vec<Lit> = input.bits().to_vec();
    cmp_inputs.extend_from_slice(&state);
    let gt = instantiate(&mut aig, comparator, &cmp_inputs)[0];
    for (k, &s) in state.iter().enumerate() {
        let next = aig.mux(gt, input.bit(k), s);
        aig.set_latch_next(first + k, next);
    }
    for &s in &state {
        aig.add_output(s);
    }
    aig
}

/// A pulse counter: a saturating `count_width`-bit counter increments in
/// every cycle where `cmp(input, level)` reports the input above the
/// constant `level`. Outputs the counter.
///
/// The component influences **control**, not data: an approximate
/// comparator mis-judges inputs near the level, and every mis-decision
/// shifts the count by one — error accumulates through wrong branches
/// rather than wrong sums.
///
/// # Panics
///
/// Panics if the comparator's interface does not match `width`, or
/// `count_width` is 0.
pub fn pulse_counter(comparator: &Netlist, width: usize, level: u128, count_width: usize) -> Aig {
    assert_eq!(comparator.num_inputs(), 2 * width, "comparator input width");
    assert!(
        comparator.num_outputs() >= 1,
        "comparator needs a gt output"
    );
    assert!(count_width > 0, "count_width must be positive");
    let mut aig = Aig::new();
    let input = Word::new_inputs(&mut aig, width);
    let first = aig.num_latches();
    let count = Word::from_lits((0..count_width).map(|_| aig.add_latch(false)).collect());

    let level_word = Word::constant(level, width);
    let mut cmp_inputs: Vec<Lit> = input.bits().to_vec();
    cmp_inputs.extend_from_slice(level_word.bits());
    let above = instantiate(&mut aig, comparator, &cmp_inputs)[0];

    let one = Word::constant(1, count_width);
    let (incremented, carry) = count.add(&mut aig, &one);
    let ones = Word::constant(u128::MAX, count_width);
    let bumped = Word::mux(&mut aig, carry, &ones, &incremented);
    let next = Word::mux(&mut aig, above, &bumped, &count);
    for (k, &bit) in next.bits().iter().enumerate() {
        aig.set_latch_next(first + k, bit);
    }
    for &c in count.bits() {
        aig.add_output(c);
    }
    aig
}

/// A registered ALU stage: operand registers feed the component, whose
/// result is registered before the output — a 2-deep pipeline with **no
/// feedback**. The component is a `width`-bit two-operand block with
/// `out_width` outputs.
///
/// # Panics
///
/// Panics if the component interface does not match `width`.
pub fn registered_alu(component: &Netlist, width: usize) -> Aig {
    assert_eq!(component.num_inputs(), 2 * width, "component input width");
    let out_width = component.num_outputs();
    let mut aig = Aig::new();
    let a = Word::new_inputs(&mut aig, width);
    let b = Word::new_inputs(&mut aig, width);
    // Stage 1: operand registers.
    let first_in = aig.num_latches();
    let ra: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    let rb: Vec<Lit> = (0..width).map(|_| aig.add_latch(false)).collect();
    for k in 0..width {
        aig.set_latch_next(first_in + k, a.bit(k));
        aig.set_latch_next(first_in + width + k, b.bit(k));
    }
    // Component.
    let mut comp_inputs = ra.clone();
    comp_inputs.extend_from_slice(&rb);
    let result = instantiate(&mut aig, component, &comp_inputs);
    // Stage 2: output register.
    let first_out = aig.num_latches();
    let ro: Vec<Lit> = (0..out_width).map(|_| aig.add_latch(false)).collect();
    for (k, &r) in result.iter().enumerate().take(out_width) {
        aig.set_latch_next(first_out + k, r);
    }
    for &s in &ro {
        aig.add_output(s);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmc_aig::{bits_to_u128, Simulator};
    use axmc_circuit::generators;

    fn step_value(sim: &mut Simulator<'_>, inputs: &[bool]) -> u128 {
        let packed: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let out = sim.step(&packed);
        let bits: Vec<bool> = out.iter().map(|&v| v & 1 == 1).collect();
        bits_to_u128(&bits)
    }

    fn bits(x: u128, w: usize) -> Vec<bool> {
        axmc_aig::u128_to_bits(x, w)
    }

    #[test]
    fn accumulator_adds_inputs() {
        let acc = accumulator(&generators::ripple_carry_adder(4), 4);
        let mut sim = Simulator::new(&acc);
        let mut expected = 0u128;
        for x in [3u128, 5, 9, 15, 2] {
            let got = step_value(&mut sim, &bits(x, 4));
            assert_eq!(got, expected);
            expected = (expected + x) % 16;
        }
    }

    #[test]
    fn mac_multiplies_and_accumulates() {
        let m = mac(
            &generators::array_multiplier(3),
            &generators::ripple_carry_adder(6),
            3,
        );
        let mut sim = Simulator::new(&m);
        let mut expected = 0u128;
        for (a, b) in [(3u128, 5u128), (7, 7), (2, 6)] {
            let mut input = bits(a, 3);
            input.extend(bits(b, 3));
            let got = step_value(&mut sim, &input);
            assert_eq!(got, expected);
            expected = (expected + a * b) % 64;
        }
    }

    #[test]
    fn fir_computes_moving_sum() {
        let f = fir_moving_sum(&generators::ripple_carry_adder(4), 4, 4);
        let mut sim = Simulator::new(&f);
        let stimulus = [1u128, 2, 3, 4, 5, 6];
        let mut window = [0u128; 4];
        for (n, &x) in stimulus.iter().enumerate() {
            window.rotate_right(1);
            window[0] = x;
            let got = step_value(&mut sim, &bits(x, 4));
            let want: u128 =
                window.iter().take(n + 1).sum::<u128>() + window.iter().skip(n + 1).sum::<u128>();
            assert_eq!(got, want, "cycle {n}");
        }
    }

    #[test]
    fn leaky_integrator_decays() {
        let l = leaky_integrator(&generators::ripple_carry_adder(4), 4);
        let mut sim = Simulator::new(&l);
        // Inject 8 once, then zeros: state halves each cycle.
        assert_eq!(step_value(&mut sim, &bits(8, 4)), 0);
        assert_eq!(step_value(&mut sim, &bits(0, 4)), 8);
        assert_eq!(step_value(&mut sim, &bits(0, 4)), 4);
        assert_eq!(step_value(&mut sim, &bits(0, 4)), 2);
        assert_eq!(step_value(&mut sim, &bits(0, 4)), 1);
        assert_eq!(step_value(&mut sim, &bits(0, 4)), 0);
    }

    #[test]
    fn counter_counts_when_enabled() {
        let c = counter(&generators::incrementer(3), 3);
        let mut sim = Simulator::new(&c);
        assert_eq!(step_value(&mut sim, &[true]), 0);
        assert_eq!(step_value(&mut sim, &[true]), 1);
        assert_eq!(step_value(&mut sim, &[false]), 2);
        assert_eq!(step_value(&mut sim, &[true]), 2);
        assert_eq!(step_value(&mut sim, &[true]), 3);
    }

    #[test]
    fn registered_alu_is_a_two_stage_pipeline() {
        let alu = registered_alu(&generators::ripple_carry_adder(3), 3);
        let mut sim = Simulator::new(&alu);
        let feed = |sim: &mut Simulator<'_>, a: u128, b: u128| {
            let mut input = bits(a, 3);
            input.extend(bits(b, 3));
            step_value(sim, &input)
        };
        assert_eq!(feed(&mut sim, 3, 4), 0); // pipeline empty
        assert_eq!(feed(&mut sim, 1, 1), 0); // first result registering now
        assert_eq!(feed(&mut sim, 0, 0), 7); // 3+4 emerges after 2 cycles
        assert_eq!(feed(&mut sim, 0, 0), 2); // 1+1
    }

    #[test]
    fn max_tracker_tracks_maximum() {
        let m = max_tracker(&generators::comparator(4), 4);
        let mut sim = Simulator::new(&m);
        let stimulus = [3u128, 9, 5, 12, 7, 12, 1];
        let mut best = 0u128;
        for &x in &stimulus {
            let got = step_value(&mut sim, &bits(x, 4));
            assert_eq!(got, best, "state lags by one cycle");
            best = best.max(x);
        }
    }

    #[test]
    fn max_tracker_with_truncated_comparator_lags_boundedly() {
        use axmc_circuit::approx;
        let cut = 2;
        let exact = max_tracker(&generators::comparator(4), 4);
        let apx = max_tracker(&approx::truncated_comparator(4, cut), 4);
        let mut se = Simulator::new(&exact);
        let mut sa = Simulator::new(&apx);
        let stimulus = [3u128, 9, 11, 2, 15, 4];
        for &x in &stimulus {
            let ge = step_value(&mut se, &bits(x, 4));
            let ga = step_value(&mut sa, &bits(x, 4));
            assert!(ge >= ga, "approximate tracker never overshoots");
            assert!(ge - ga < (1 << cut), "lag bounded by 2^cut");
        }
    }

    #[test]
    fn pulse_counter_counts_above_level() {
        let c = pulse_counter(&generators::comparator(4), 4, 7, 4);
        let mut sim = Simulator::new(&c);
        let stimulus = [9u128, 3, 8, 7, 15, 0];
        let mut expect = 0u128;
        for &x in &stimulus {
            let got = step_value(&mut sim, &bits(x, 4));
            assert_eq!(got, expect, "input {x}");
            if x > 7 {
                expect += 1;
            }
        }
    }

    #[test]
    fn pulse_counter_with_truncated_comparator_misjudges_band() {
        use axmc_circuit::approx;
        // cut 2 at level 7: inputs 4..=7 compare as top(x)=1 == top(7)=1
        // -> "not above"; but inputs 8..=11 give top 2 > 1 -> "above".
        // The ambiguity band is 4..=7 (correctly not-above) vs e.g. level
        // 5: inputs 6,7 should count but top(6)=top(5)=1 -> missed.
        let exact = pulse_counter(&generators::comparator(4), 4, 5, 4);
        let apx = pulse_counter(&approx::truncated_comparator(4, 2), 4, 5, 4);
        let mut se = Simulator::new(&exact);
        let mut sa = Simulator::new(&apx);
        let stimulus = [6u128, 7, 6, 7];
        let mut last = (0u128, 0u128);
        for &x in &stimulus {
            last = (
                step_value(&mut se, &bits(x, 4)),
                step_value(&mut sa, &bits(x, 4)),
            );
        }
        // After three 6/7 inputs the exact counter shows 3, approx 0.
        assert_eq!(last.0, 3);
        assert_eq!(last.1, 0);
    }

    #[test]
    fn templates_accept_approximate_components() {
        use axmc_circuit::approx;
        let apx = approx::truncated_adder(4, 2);
        let acc = accumulator(&apx, 4);
        assert_eq!(acc.num_latches(), 4);
        let mut sim = Simulator::new(&acc);
        // 3 + 3 with low bits dropped: accumulates coarsely.
        step_value(&mut sim, &bits(3, 4));
        let second = step_value(&mut sim, &bits(3, 4));
        assert_eq!(second, 0, "3 truncates to 0 in the first addition");
    }

    #[test]
    #[should_panic]
    fn interface_mismatch_panics() {
        let _ = accumulator(&generators::ripple_carry_adder(4), 5);
    }
}
