//! Sequential circuit templates and the benchmark suite for the `axmc`
//! toolkit.
//!
//! The DAC'16 problem setting is: a combinational component (adder,
//! multiplier, incrementer) sits inside a sequential circuit, and the
//! component is replaced by an approximate variant. This crate provides
//! the sequential substrate:
//!
//! * design templates with pluggable components ([`accumulator`], [`mac`],
//!   [`fir_moving_sum`], [`leaky_integrator`], [`counter`],
//!   [`registered_alu`]) covering feedback, feed-forward and pipeline
//!   structures;
//! * [`suite::standard_suite`] — the golden/approximated pairs the
//!   evaluation harnesses run on.
//!
//! # Examples
//!
//! ```
//! use axmc_circuit::{generators, approx};
//! use axmc_seq::accumulator;
//!
//! // An 8-bit accumulator, exact vs lower-OR adder.
//! let golden = accumulator(&generators::ripple_carry_adder(8), 8);
//! let cheap = accumulator(&approx::lower_or_adder(8, 4), 8);
//! assert_eq!(golden.num_inputs(), cheap.num_inputs());
//! assert_eq!(golden.num_latches(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod designs;
pub mod suite;

pub use crate::designs::{
    accumulator, counter, fir_moving_sum, instantiate, leaky_integrator, mac, mac_wide,
    max_tracker, pulse_counter, registered_alu, wide_accumulator, wide_leaky_integrator,
};
pub use crate::suite::BenchmarkPair;
