//! The standard benchmark suite: golden/approximated sequential circuit
//! pairs used throughout the evaluation.
//!
//! Each [`BenchmarkPair`] instantiates one design template twice — once
//! with the exact component and once with an approximate variant — so the
//! error-determination engines can be pointed at `golden` vs `approx`
//! directly.

use crate::designs;
use axmc_aig::Aig;
use axmc_circuit::{approx, generators};

/// A golden/approximated pair of sequential circuits built from the same
/// template.
#[derive(Clone, Debug)]
pub struct BenchmarkPair {
    /// Suite-unique identifier, e.g. `"accumulator8/loa4"`.
    pub name: String,
    /// The design template name, e.g. `"accumulator"`.
    pub design: String,
    /// The approximate component's name, e.g. `"loa4"`.
    pub component: String,
    /// Whether the design contains feedback through the component (errors
    /// can accumulate).
    pub feedback: bool,
    /// The golden instance.
    pub golden: Aig,
    /// The approximated instance.
    pub approx: Aig,
}

impl BenchmarkPair {
    fn new(design: &str, component: &str, feedback: bool, golden: Aig, approx: Aig) -> Self {
        BenchmarkPair {
            name: format!("{design}/{component}"),
            design: design.to_string(),
            component: component.to_string(),
            feedback,
            golden,
            approx,
        }
    }
}

/// Adder-based benchmarks at the given operand width: accumulator, 4-tap
/// FIR, leaky integrator and registered ALU, each against truncated,
/// lower-OR and speculative adder variants.
///
/// # Panics
///
/// Panics if `width < 4`.
pub fn adder_benchmarks(width: usize) -> Vec<BenchmarkPair> {
    assert!(width >= 4, "width must be at least 4");
    // Approximation parameters are relative to the data width; the
    // accumulator instantiates the same architectures at the (wider)
    // accumulator width so its error growth is visible instead of being
    // swallowed by modular wrap-around.
    let acc_width = width + 4;
    type AdderBuilder = fn(usize, usize) -> axmc_circuit::Netlist;
    let variants: [(&str, AdderBuilder, usize); 3] = [
        ("trunc", approx::truncated_adder, width / 2),
        ("loa", approx::lower_or_adder, width / 2),
        ("spec", approx::speculative_adder, width / 4),
    ];
    let exact = generators::ripple_carry_adder(width);
    let exact_acc = generators::ripple_carry_adder(acc_width);
    let mut out = Vec::new();
    for (kind, build, param) in &variants {
        let comp_name = format!("{kind}{param}");
        let apx = build(width, *param);
        let apx_acc = build(acc_width, *param);
        out.push(BenchmarkPair::new(
            &format!("accumulator{width}"),
            &comp_name,
            true,
            designs::wide_accumulator(&exact_acc, width, acc_width),
            designs::wide_accumulator(&apx_acc, width, acc_width),
        ));
        out.push(BenchmarkPair::new(
            &format!("fir4_{width}"),
            &comp_name,
            false,
            designs::fir_moving_sum(&exact, width, 4),
            designs::fir_moving_sum(&apx, width, 4),
        ));
        let leaky_width = width + 1;
        let exact_leaky = generators::ripple_carry_adder(leaky_width);
        let apx_leaky = build(leaky_width, *param);
        out.push(BenchmarkPair::new(
            &format!("leaky{width}"),
            &comp_name,
            true,
            designs::wide_leaky_integrator(&exact_leaky, width, leaky_width),
            designs::wide_leaky_integrator(&apx_leaky, width, leaky_width),
        ));
        out.push(BenchmarkPair::new(
            &format!("alu{width}"),
            &comp_name,
            false,
            designs::registered_alu(&exact, width),
            designs::registered_alu(&apx, width),
        ));
    }
    out
}

/// Multiplier-based benchmarks: a MAC unit (approximate multiplier, exact
/// accumulator adder) and a registered multiplier, against truncation and
/// Kulkarni variants.
///
/// # Panics
///
/// Panics if `width < 2` or `width` is not a power of two (the Kulkarni
/// variant requires it).
pub fn multiplier_benchmarks(width: usize) -> Vec<BenchmarkPair> {
    assert!(
        width >= 2 && width.is_power_of_two(),
        "width must be a power of two >= 2"
    );
    let acc_width = 2 * width + 3;
    let exact_mul = generators::array_multiplier(width);
    let exact_add = generators::ripple_carry_adder(acc_width);
    let variants = [
        (
            format!("pptrunc{}", width / 2),
            approx::truncated_multiplier(width, width / 2),
        ),
        (
            format!("optrunc{}", width / 2),
            approx::operand_truncated_multiplier(width, width / 2),
        ),
        ("kulkarni".to_string(), approx::kulkarni_multiplier(width)),
    ];
    let mut out = Vec::new();
    for (comp_name, apx) in &variants {
        out.push(BenchmarkPair::new(
            &format!("mac{width}"),
            comp_name,
            true,
            designs::mac_wide(&exact_mul, &exact_add, width, acc_width),
            designs::mac_wide(apx, &exact_add, width, acc_width),
        ));
        out.push(BenchmarkPair::new(
            &format!("regmul{width}"),
            comp_name,
            false,
            designs::registered_alu(&exact_mul, width),
            designs::registered_alu(apx, width),
        ));
    }
    out
}

/// Counter benchmarks against the speculative incrementer.
///
/// # Panics
///
/// Panics if `width < 4`.
pub fn counter_benchmarks(width: usize) -> Vec<BenchmarkPair> {
    assert!(width >= 4, "width must be at least 4");
    let exact = generators::incrementer(width);
    // Two aggressiveness levels: segment 1 errs within a few counts,
    // segment width/4 needs a longer run before the first wrong carry.
    [1, width / 4]
        .iter()
        .map(|&seg| {
            let apx = approx::speculative_incrementer(width, seg);
            BenchmarkPair::new(
                &format!("counter{width}"),
                &format!("specinc{seg}"),
                true,
                designs::counter(&exact, width),
                designs::counter(&apx, width),
            )
        })
        .collect()
}

/// Max-tracker benchmarks against truncated comparators — the suite's
/// bounded-error feedback design.
///
/// # Panics
///
/// Panics if `width < 4`.
pub fn comparator_benchmarks(width: usize) -> Vec<BenchmarkPair> {
    assert!(width >= 4, "width must be at least 4");
    let exact = generators::comparator(width);
    [1, width / 2]
        .iter()
        .map(|&cut| {
            let apx = approx::truncated_comparator(width, cut);
            BenchmarkPair::new(
                &format!("maxtrack{width}"),
                &format!("trunccmp{cut}"),
                true,
                designs::max_tracker(&exact, width),
                designs::max_tracker(&apx, width),
            )
        })
        .collect()
}

/// Pulse-counter benchmarks: control-flow divergence through a truncated
/// comparator against a mid-range level.
///
/// # Panics
///
/// Panics if `width < 4`.
pub fn pulse_counter_benchmarks(width: usize) -> Vec<BenchmarkPair> {
    assert!(width >= 4, "width must be at least 4");
    let exact = generators::comparator(width);
    // A level whose low bits are NOT all ones, so truncated comparators
    // actually mis-judge the band just above it (level = 2^(w-1) - 1
    // would make every truncation exact).
    let level = (1u128 << width) / 2 + 2;
    let count_width = width;
    [1, width / 2]
        .iter()
        .map(|&cut| {
            let apx = approx::truncated_comparator(width, cut);
            BenchmarkPair::new(
                &format!("pulsecnt{width}"),
                &format!("trunccmp{cut}"),
                true,
                designs::pulse_counter(&exact, width, level, count_width),
                designs::pulse_counter(&apx, width, level, count_width),
            )
        })
        .collect()
}

/// The full standard suite at a given adder width (multipliers use
/// `width / 2` to keep state spaces comparable).
///
/// # Panics
///
/// Panics if `width` is not a power of two `>= 8`.
pub fn standard_suite(width: usize) -> Vec<BenchmarkPair> {
    assert!(
        width >= 8 && width.is_power_of_two(),
        "width must be a power of two >= 8"
    );
    let mut suite = adder_benchmarks(width);
    suite.extend(multiplier_benchmarks(width / 2));
    suite.extend(counter_benchmarks(width));
    suite.extend(comparator_benchmarks(width));
    suite.extend(pulse_counter_benchmarks(width));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmc_aig::Simulator;

    #[test]
    fn suite_builds_and_interfaces_match() {
        for pair in standard_suite(8) {
            assert_eq!(
                pair.golden.num_inputs(),
                pair.approx.num_inputs(),
                "{}",
                pair.name
            );
            assert_eq!(
                pair.golden.num_outputs(),
                pair.approx.num_outputs(),
                "{}",
                pair.name
            );
            assert!(pair.golden.num_latches() > 0, "{} is sequential", pair.name);
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = standard_suite(8);
        let mut names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate benchmark names");
    }

    #[test]
    fn golden_and_approx_eventually_differ() {
        // Drive every pair with a varied deterministic stimulus. Designs
        // built on truncated/lower-OR adders err on dense inputs quickly;
        // for speculative variants only the accumulator is guaranteed to
        // hit a cross-block carry within the horizon, so scope the claim.
        for pair in adder_benchmarks(8) {
            let must_diverge = pair.component.starts_with("trunc")
                || pair.component.starts_with("loa")
                || pair.design.starts_with("accumulator");
            if !must_diverge {
                continue;
            }
            let mut sg = Simulator::new(&pair.golden);
            let mut sa = Simulator::new(&pair.approx);
            let mut seed = 0x9E37_79B9u64;
            let mut differed = false;
            for _ in 0..200 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let inputs: Vec<u64> = (0..pair.golden.num_inputs())
                    .map(|i| {
                        if (seed >> (i % 64)) & 1 == 1 {
                            u64::MAX
                        } else {
                            0
                        }
                    })
                    .collect();
                if sg.step(&inputs) != sa.step(&inputs) {
                    differed = true;
                    break;
                }
            }
            assert!(differed, "{} never diverged", pair.name);
        }
    }
}
