//! The structural-hash result cache behind `axmc serve`.
//!
//! [`ResultCache`] is the service-side implementation of the analyzers'
//! [`QueryCache`] hook: a thread-safe map from [`QueryKey`] (ordered AIG
//! pair fingerprint + metric kind + parameters + certified/backend/sweep
//! knobs) to completed verdicts. Every lookup increments the
//! `serve.cache.hit` / `serve.cache.miss` obs counters *and* the cache's
//! own atomics, so hit rates are visible both in `--metrics` output and
//! in the batch summary line even when observability is off.
//!
//! Certified and uncertified entries are distinct by construction — the
//! key carries the certify bit — so a cached uncertified verdict can
//! never satisfy a certified query.

use axmc_core::{CachedResult, QueryCache, QueryKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A shared, counting result cache for one server instance.
///
/// Wrap it in an `Arc` and hand it to the analyzers through
/// `CacheHandle::new` / `AnalysisOptions::with_cache`; the same `Arc`
/// answers the server's own pre-checks ([`ResultCache::peek`]) and the
/// summary statistics.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<QueryKey, CachedResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Whether `key` is currently cached, **without** counting a hit or
    /// a miss. The server uses this to tag responses as `cached` before
    /// the analyzer performs its own (counting) lookup.
    pub fn peek(&self, key: &QueryKey) -> bool {
        self.map.lock().expect("cache poisoned").contains_key(key)
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl QueryCache for ResultCache {
    fn get(&self, key: &QueryKey) -> Option<CachedResult> {
        let found = self.map.lock().expect("cache poisoned").get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            axmc_obs::counter("serve.cache.hit").inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            axmc_obs::counter("serve.cache.miss").inc();
        }
        found
    }

    fn put(&self, key: &QueryKey, value: CachedResult) {
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(key.clone(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmc_aig::Aig;
    use axmc_core::{AnalysisOptions, EngineKind, ErrorReport};

    fn key(metric: &'static str) -> QueryKey {
        let mut g = Aig::new();
        let a = g.add_input();
        g.add_output(a);
        let mut c = Aig::new();
        let a = c.add_input();
        c.add_output(a);
        QueryKey::new(&g, &c, metric, &AnalysisOptions::new())
    }

    #[test]
    fn counts_hits_and_misses_but_peek_is_free() {
        let cache = ResultCache::new();
        let k = key("t.metric");
        assert!(!cache.peek(&k));
        assert_eq!(cache.get(&k), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.put(
            &k,
            CachedResult::Wide(ErrorReport {
                value: 3,
                sat_calls: 1,
                conflicts: 0,
                engine: EngineKind::Sat,
            }),
        );
        assert!(cache.peek(&k), "peek sees the entry");
        assert_eq!((cache.hits(), cache.misses()), (0, 1), "peek never counts");
        assert!(cache.get(&k).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
