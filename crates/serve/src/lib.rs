//! Batch analysis service for axmc (`axmc serve`).
//!
//! A long-running server that accepts batches of analysis jobs as
//! line-delimited JSON — over stdin or a unix domain socket — schedules
//! them onto a worker fleet with FIFO-within-priority fairness, and
//! streams results back as JSONL. The centerpiece is a structural-hash
//! result cache ([`ResultCache`]): verdicts are keyed by the ordered AIG
//! pair fingerprint plus the full query parameters, so re-analyzing a
//! circuit pair the server has already seen is a map lookup instead of a
//! solver run. Sequential threshold probes additionally reuse warm
//! incremental engines ([`axmc_core::SeqProbe`]) across jobs.
//!
//! ```text
//!   stdin/socket ──parse──▶ JobQueue ──▶ worker fleet ──▶ JSONL out
//!                              │             │
//!                              │        ResultCache ◀─── analyzers
//!                              └── priority, FIFO within class
//! ```
//!
//! See `docs/serve.md` for the wire protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod protocol;
mod queue;
mod server;

pub use crate::cache::ResultCache;
pub use crate::protocol::{Metric, Request, RequestError};
pub use crate::queue::JobQueue;
pub use crate::server::{BatchSummary, ServeConfig, Server};
