//! The JSONL request/response codec for `axmc serve`.
//!
//! One JSON object per line in both directions; the full schema lives in
//! `docs/serve.md`. Numeric metric values cross the wire as **decimal
//! strings** (`"value":"1023"`): worst-case errors are `u128` and JSON's
//! single `f64` number type cannot hold them losslessly.

use axmc_obs::json::Json;

/// Which analysis a job requests. Combinational vs sequential is not
/// part of the request — it is decided by the circuits themselves
/// (latches present → sequential), exactly like `axmc analyze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Worst-case arithmetic error (`comb.wce` / `seq.wce`).
    Wce,
    /// Worst-case Hamming (bit-flip) error.
    BitFlip,
    /// Threshold probe: can the error exceed `threshold`?
    Exceeds,
}

impl Metric {
    fn parse(text: &str) -> Result<Metric, String> {
        match text {
            "wce" => Ok(Metric::Wce),
            "bit-flip" | "bit_flip" => Ok(Metric::BitFlip),
            "exceeds" => Ok(Metric::Exceeds),
            other => Err(format!(
                "unknown metric '{other}' (expected wce, bit-flip or exceeds)"
            )),
        }
    }

    /// The wire name of the metric.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Wce => "wce",
            Metric::BitFlip => "bit-flip",
            Metric::Exceeds => "exceeds",
        }
    }
}

/// What a job asks the server to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JobKind {
    /// A single-metric analysis of one (golden, candidate) pair — the
    /// original job shape, and the default when `kind` is absent.
    #[default]
    Analyze,
    /// A library-characterization job: exact WCE *and* bit-flip error
    /// of one combinational component against the exact golden of its
    /// class. `golden` is optional — when absent the class and width
    /// are inferred from the candidate's interface and the golden is
    /// generated in-process. Both metrics go through the server's
    /// result cache, so duplicate library entries across batches are
    /// answered from memory.
    Characterize,
}

/// One analysis job, parsed from a request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-chosen identifier echoed on every response line.
    pub id: String,
    /// What to do with the circuits.
    pub kind: JobKind,
    /// Path to the golden circuit (ASCII AIGER). Optional for
    /// [`JobKind::Characterize`] jobs (inferred from the candidate).
    pub golden: Option<String>,
    /// Path to the candidate/approximate circuit.
    pub candidate: String,
    /// Requested metric.
    pub metric: Metric,
    /// Threshold for [`Metric::Exceeds`]; ignored otherwise.
    pub threshold: u128,
    /// Cycle horizon for sequential pairs (default 8); ignored for
    /// combinational pairs.
    pub horizon: usize,
    /// Scheduling priority: higher runs sooner; FIFO within a priority.
    pub priority: i64,
    /// Per-job wall-clock deadline in milliseconds, measured from the
    /// moment a worker picks the job up.
    pub timeout_ms: Option<u64>,
    /// Overrides the server's default certified mode for this job.
    pub certify: Option<bool>,
}

/// A request line that could not be turned into a job. `id` is carried
/// when the line was at least well-formed enough to name one, so the
/// error response can still be correlated.
#[derive(Debug)]
pub struct RequestError {
    /// The job id, when recoverable from the malformed line.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
        Some(_) => Err(format!("field '{key}' must be a non-empty string")),
        None => Err(format!("missing required field '{key}'")),
    }
}

/// A non-negative integer that may arrive as a JSON number or — for
/// values beyond `f64`'s 2^53 integer range — as a decimal string.
fn u128_field(obj: &Json, key: &str) -> Result<Option<u128>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Num(v)) if *v >= 0.0 && v.fract() == 0.0 => Ok(Some(*v as u128)),
        Some(Json::Str(s)) => s
            .parse::<u128>()
            .map(Some)
            .map_err(|_| format!("field '{key}' must be a non-negative integer, got '{s}'")),
        Some(_) => Err(format!("field '{key}' must be a non-negative integer")),
    }
}

fn i64_field(obj: &Json, key: &str) -> Result<Option<i64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Num(v)) if v.fract() == 0.0 => Ok(Some(*v as i64)),
        Some(_) => Err(format!("field '{key}' must be an integer")),
    }
}

fn bool_field(obj: &Json, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("field '{key}' must be a boolean")),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = Json::parse(line).map_err(|e| RequestError {
        id: None,
        message: format!("invalid JSON: {e}"),
    })?;
    if doc.as_obj().is_none() {
        return Err(RequestError {
            id: None,
            message: "request line must be a JSON object".to_string(),
        });
    }
    // Anything after this point can at least echo the id, if present.
    let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
    let fail = |message: String| RequestError {
        id: id.clone(),
        message,
    };
    let id_val = id
        .clone()
        .ok_or_else(|| fail("missing required field 'id'".into()))?;
    let kind = match doc.get("kind").and_then(Json::as_str) {
        None | Some("analyze") => JobKind::Analyze,
        Some("characterize") => JobKind::Characterize,
        Some(other) => {
            return Err(fail(format!(
                "unknown kind '{other}' (expected analyze or characterize)"
            )))
        }
    };
    let golden = match str_field(&doc, "golden") {
        Ok(path) => Some(path),
        Err(_) if kind == JobKind::Characterize && doc.get("golden").is_none() => None,
        Err(e) => return Err(fail(e)),
    };
    // "candidate" preferred; "approx" accepted for symmetry with the
    // `analyze` flags.
    let candidate = str_field(&doc, "candidate")
        .or_else(|_| str_field(&doc, "approx"))
        .map_err(|_| fail("missing required field 'candidate' (or 'approx')".into()))?;
    // Characterize jobs compute a fixed metric set; 'metric' is only
    // meaningful (and required) for analyze jobs.
    let metric = match (kind, doc.get("metric")) {
        (JobKind::Characterize, None) => Metric::Wce,
        _ => Metric::parse(&str_field(&doc, "metric").map_err(&fail)?).map_err(&fail)?,
    };
    let threshold = u128_field(&doc, "threshold").map_err(&fail)?;
    if metric == Metric::Exceeds && threshold.is_none() {
        return Err(fail("metric 'exceeds' requires a 'threshold' field".into()));
    }
    let horizon = u128_field(&doc, "horizon").map_err(&fail)?;
    if horizon.is_some_and(|h| h > 4096) {
        return Err(fail("field 'horizon' must be <= 4096".into()));
    }
    let timeout_ms = u128_field(&doc, "timeout_ms").map_err(&fail)?;
    if timeout_ms.is_some_and(|t| t > u64::MAX as u128) {
        return Err(fail("field 'timeout_ms' out of range".into()));
    }
    Ok(Request {
        id: id_val,
        kind,
        golden,
        candidate,
        metric,
        threshold: threshold.unwrap_or(0),
        horizon: horizon.unwrap_or(8) as usize,
        priority: i64_field(&doc, "priority").map_err(&fail)?.unwrap_or(0),
        timeout_ms: timeout_ms.map(|t| t as u64),
        certify: bool_field(&doc, "certify").map_err(&fail)?,
    })
}

/// `{"event":"start","id":...}` — a worker picked the job up.
pub fn start_line(id: &str) -> String {
    Json::Obj(vec![
        ("event".into(), Json::Str("start".into())),
        ("id".into(), Json::Str(id.into())),
    ])
    .render()
}

/// `{"event":"result","id":...,"status":"ok","cached":...,"result":{...}}`.
///
/// The nested `result` object is a pure function of the query — it is
/// byte-identical between a cold run and a cache replay, which is what
/// lets callers (and the CI smoke test) diff verdicts across batches.
pub fn ok_line(id: &str, cached: bool, result: Json) -> String {
    Json::Obj(vec![
        ("event".into(), Json::Str("result".into())),
        ("id".into(), Json::Str(id.into())),
        ("status".into(), Json::Str("ok".into())),
        ("cached".into(), Json::Bool(cached)),
        ("result".into(), result),
    ])
    .render()
}

/// `{"event":"result","id":...,"status":"interrupted"|"error","error":...}`.
pub fn failure_line(id: Option<&str>, status: &str, message: &str) -> String {
    let mut members = vec![("event".into(), Json::Str("result".into()))];
    if let Some(id) = id {
        members.push(("id".into(), Json::Str(id.into())));
    }
    members.push(("status".into(), Json::Str(status.into())));
    members.push(("error".into(), Json::Str(message.into())));
    Json::Obj(members).render()
}

/// The end-of-batch summary line.
pub fn done_line(
    jobs: u64,
    ok: u64,
    interrupted: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
) -> String {
    Json::Obj(vec![
        ("event".into(), Json::Str("done".into())),
        ("jobs".into(), Json::Num(jobs as f64)),
        ("ok".into(), Json::Num(ok as f64)),
        ("interrupted".into(), Json::Num(interrupted as f64)),
        ("errors".into(), Json::Num(errors as f64)),
        ("cache_hits".into(), Json::Num(cache_hits as f64)),
        ("cache_misses".into(), Json::Num(cache_misses as f64)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"j1","golden":"g.aag","candidate":"c.aag","metric":"exceeds",
                "threshold":"340282366920938463463374607431768211455","horizon":4,
                "priority":2,"timeout_ms":500,"certify":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, "j1");
        assert_eq!(r.metric, Metric::Exceeds);
        assert_eq!(
            r.threshold,
            u128::MAX,
            "string thresholds keep u128 precision"
        );
        assert_eq!(r.horizon, 4);
        assert_eq!(r.priority, 2);
        assert_eq!(r.timeout_ms, Some(500));
        assert_eq!(r.certify, Some(true));
    }

    #[test]
    fn defaults_and_aliases() {
        let r = parse_request(r#"{"id":"a","golden":"g","approx":"c","metric":"wce"}"#).unwrap();
        assert_eq!(r.candidate, "c", "'approx' is accepted for 'candidate'");
        assert_eq!(r.horizon, 8);
        assert_eq!(r.priority, 0);
        assert_eq!(r.timeout_ms, None);
        assert_eq!(r.certify, None);
        assert_eq!(
            parse_request(r#"{"id":"b","golden":"g","candidate":"c","metric":"bit_flip"}"#)
                .unwrap()
                .metric,
            Metric::BitFlip
        );
    }

    #[test]
    fn characterize_kind_relaxes_golden_and_metric() {
        let r = parse_request(r#"{"id":"c1","kind":"characterize","candidate":"c.aag"}"#).unwrap();
        assert_eq!(r.kind, JobKind::Characterize);
        assert_eq!(r.golden, None, "golden is inferred for characterize jobs");
        assert_eq!(r.metric, Metric::Wce);
        let r = parse_request(
            r#"{"id":"c2","kind":"characterize","golden":"g.aag","candidate":"c.aag"}"#,
        )
        .unwrap();
        assert_eq!(r.golden.as_deref(), Some("g.aag"));
        // Analyze jobs (explicit or default) still require golden.
        assert!(parse_request(r#"{"id":"a1","candidate":"c.aag","metric":"wce"}"#).is_err());
        assert!(parse_request(
            r#"{"id":"a2","kind":"analyze","candidate":"c.aag","metric":"wce"}"#
        )
        .is_err());
        // ... and an unknown kind is rejected outright.
        let e = parse_request(r#"{"id":"k","kind":"evolve","candidate":"c.aag"}"#).unwrap_err();
        assert!(e.message.contains("unknown kind"));
        // A characterize job with a malformed golden is rejected, not
        // silently treated as inference.
        assert!(
            parse_request(r#"{"id":"c3","kind":"characterize","golden":7,"candidate":"c"}"#)
                .is_err()
        );
    }

    #[test]
    fn errors_keep_the_id_when_recoverable() {
        let e = parse_request(r#"{"id":"j9","golden":"g","candidate":"c","metric":"exceeds"}"#)
            .unwrap_err();
        assert_eq!(e.id.as_deref(), Some("j9"));
        assert!(e.message.contains("threshold"));
        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.id, None);
        let e = parse_request(r#"{"golden":"g"}"#).unwrap_err();
        assert_eq!(e.id, None);
        assert!(e.message.contains("'id'"));
    }

    #[test]
    fn rejects_bad_field_types() {
        for line in [
            r#"{"id":"x","golden":7,"candidate":"c","metric":"wce"}"#,
            r#"{"id":"x","golden":"g","candidate":"c","metric":"huh"}"#,
            r#"{"id":"x","golden":"g","candidate":"c","metric":"wce","priority":1.5}"#,
            r#"{"id":"x","golden":"g","candidate":"c","metric":"exceeds","threshold":-1}"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn response_lines_are_single_json_objects() {
        let ok = ok_line(
            "j1",
            true,
            Json::Obj(vec![("v".into(), Json::Str("3".into()))]),
        );
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert!(!ok.contains('\n'));
        let fail = failure_line(None, "error", "boom");
        assert!(Json::parse(&fail).unwrap().get("id").is_none());
        let done = done_line(3, 2, 0, 1, 1, 2);
        let doc = Json::parse(&done).unwrap();
        assert_eq!(doc.get("cache_hits").and_then(Json::as_f64), Some(1.0));
    }
}
