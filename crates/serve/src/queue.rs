//! FIFO-within-priority fair job queue for the serve worker fleet.
//!
//! A max-heap ordered by `(priority, arrival)` — higher priority first,
//! and strictly first-come-first-served among equal priorities (the
//! arrival sequence number breaks ties, so no job can starve a peer of
//! its own priority class). Blocking `pop` with a close signal gives the
//! usual producer/consumer shutdown: workers drain the remaining jobs
//! after `close()` and then see `None`.
//!
//! Every push updates the `serve.queue.depth` obs gauge, a high-water
//! mark of how deep the backlog got (worker-scope gauges merge by max,
//! so an instantaneous depth would be ambiguous in `--metrics` output).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum: higher priority wins, then the
        // *lower* sequence number (earlier arrival).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A blocking priority queue with FIFO order inside each priority class.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item` at `priority` (higher runs sooner) and wakes one
    /// waiting worker. Items pushed after [`JobQueue::close`] are still
    /// accepted and drained — closing only signals "no more producers".
    pub fn push(&self, priority: i64, item: T) {
        let mut state = self.state.lock().expect("queue poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Entry {
            priority,
            seq,
            item,
        });
        axmc_obs::gauge("serve.queue.depth").set_max(state.heap.len() as i64);
        drop(state);
        self.ready.notify_one();
    }

    /// Dequeues the highest-priority, earliest-arrived item, blocking
    /// while the queue is empty and open. Returns `None` once the queue
    /// is both closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Signals that no more items will be pushed; wakes every waiter.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (not yet popped).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_priority_and_priority_first() {
        let q = JobQueue::new();
        q.push(0, "low-1");
        q.push(5, "high-1");
        q.push(0, "low-2");
        q.push(5, "high-2");
        q.push(-3, "bottom");
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["high-1", "high-2", "low-1", "low-2", "bottom"]);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new());
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn many_workers_drain_every_item_once() {
        let q = Arc::new(JobQueue::new());
        for i in 0..200u32 {
            q.push((i % 3) as i64, i);
        }
        q.close();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..200).collect();
        assert_eq!(all, expect);
        assert!(q.is_empty());
    }
}
