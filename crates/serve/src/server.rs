//! The batch analysis server: request intake, the worker fleet, and the
//! per-job execution pipeline (cache → warm engine → cold analyzer).

use crate::cache::ResultCache;
use crate::protocol::{self, JobKind, Metric, Request};
use crate::queue::JobQueue;
use axmc_aig::{aiger, Aig};
use axmc_core::cache::metric;
use axmc_core::{
    AnalysisError, AnalysisOptions, Backend, CacheHandle, CachedResult, CombAnalyzer, QueryCache,
    QueryKey, ResourceCtl, SeqAnalyzer, SeqProbe, Verdict,
};
use axmc_obs::json::Json;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server-wide knobs, fixed for the lifetime of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker fleet size: how many jobs run concurrently. Each job runs
    /// its analysis serially — the fleet parallelism is *across* jobs.
    pub jobs: usize,
    /// Default certified mode for jobs that don't set `certify`.
    pub certify: bool,
    /// Backend for combinational metrics (sequential analyses are
    /// always SAT/BMC, exactly like `axmc analyze`).
    pub backend: Backend,
    /// Default per-job deadline applied when a request carries no
    /// `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Run the solver's between-solves inprocessing pass inside every
    /// analysis engine (see [`AnalysisOptions::with_inprocessing`]).
    /// Verdicts are unaffected; pays off on long-lived warm probes.
    pub inprocess: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 1,
            certify: false,
            backend: Backend::Sat,
            default_timeout: None,
            inprocess: false,
        }
    }
}

/// What one batch did, mirrored by the `done` summary line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs accepted into the queue (parse failures excluded).
    pub jobs: u64,
    /// Jobs that produced a verdict.
    pub ok: u64,
    /// Jobs stopped by a resource limit before a verdict.
    pub interrupted: u64,
    /// Parse failures plus jobs that failed outright.
    pub errors: u64,
    /// Cache lookups answered from memory during this batch.
    pub cache_hits: u64,
    /// Cache lookups that had to compute during this batch.
    pub cache_misses: u64,
}

/// A failed job: either a typed interruption (deadline/budget) or a
/// hard error (I/O, parse, certificate rejection, panic).
struct JobFailure {
    interrupted: bool,
    message: String,
}

impl From<AnalysisError> for JobFailure {
    fn from(e: AnalysisError) -> Self {
        JobFailure {
            interrupted: matches!(e, AnalysisError::Interrupted(_)),
            message: e.to_string(),
        }
    }
}

impl From<String> for JobFailure {
    fn from(message: String) -> Self {
        JobFailure {
            interrupted: false,
            message,
        }
    }
}

/// The long-running batch analysis service.
///
/// One `Server` owns the structural-hash [`ResultCache`], the parsed
/// circuit store, and the warm [`SeqProbe`] pool; all three persist
/// across batches (and across unix-socket connections), which is where
/// the throughput win over single-shot `axmc analyze` comes from.
pub struct Server {
    config: ServeConfig,
    cache: Arc<ResultCache>,
    circuits: Mutex<HashMap<String, Arc<Aig>>>,
    /// Warm threshold-probe engines, keyed by `(pair fingerprint,
    /// certified)`. Certification cannot be enabled retroactively on a
    /// warmed solver (proof logging must be on from the first clause),
    /// so certified and uncertified probes never share an instance.
    probes: Mutex<HashMap<(u128, bool), SeqProbe>>,
}

impl Server {
    /// A server with an empty cache and no warm engines.
    pub fn new(config: ServeConfig) -> Self {
        Server {
            config,
            cache: Arc::new(ResultCache::new()),
            circuits: Mutex::new(HashMap::new()),
            probes: Mutex::new(HashMap::new()),
        }
    }

    /// The server's result cache (shared across batches).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// Runs one batch: reads JSONL requests from `input` until EOF,
    /// schedules them onto the worker fleet (FIFO within priority),
    /// streams `start`/`result` lines to `output` as jobs progress, and
    /// finishes with one `done` summary line.
    ///
    /// # Errors
    ///
    /// Only I/O failures on `input`/`output` surface here; per-job
    /// failures are reported in-band as `status:"error"` lines.
    pub fn run_batch<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> io::Result<BatchSummary> {
        let out = Mutex::new(output);
        let write_line = |line: &str| -> io::Result<()> {
            let mut w = out.lock().expect("writer poisoned");
            writeln!(w, "{line}")?;
            w.flush()
        };
        let io_failure: Mutex<Option<io::Error>> = Mutex::new(None);
        let record_io = |result: io::Result<()>| {
            if let Err(e) = result {
                io_failure
                    .lock()
                    .expect("io slot poisoned")
                    .get_or_insert(e);
            }
        };

        let (hits0, misses0) = (self.cache.hits(), self.cache.misses());
        let queue = JobQueue::<Request>::new();
        let submitted = AtomicU64::new(0);
        let ok = AtomicU64::new(0);
        let interrupted = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let parent = axmc_obs::profile::current_span_id();

        std::thread::scope(|scope| {
            for _ in 0..self.config.jobs.max(1) {
                scope.spawn(|| {
                    axmc_obs::worker_scope(|| {
                        axmc_obs::profile::with_parent(parent, || {
                            while let Some(req) = queue.pop() {
                                record_io(write_line(&protocol::start_line(&req.id)));
                                let span = axmc_obs::span("serve.job");
                                // A panic in one job must not take down the
                                // fleet; the session stays serviceable.
                                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    self.execute(&req)
                                }));
                                drop(span);
                                let line = match outcome {
                                    Ok(Ok((result, cached))) => {
                                        ok.fetch_add(1, Ordering::Relaxed);
                                        protocol::ok_line(&req.id, cached, result)
                                    }
                                    Ok(Err(fail)) => {
                                        let (counter, status) = if fail.interrupted {
                                            (&interrupted, "interrupted")
                                        } else {
                                            (&errors, "error")
                                        };
                                        counter.fetch_add(1, Ordering::Relaxed);
                                        protocol::failure_line(Some(&req.id), status, &fail.message)
                                    }
                                    Err(_) => {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                        protocol::failure_line(
                                            Some(&req.id),
                                            "error",
                                            "internal panic while analyzing this job",
                                        )
                                    }
                                };
                                record_io(write_line(&line));
                            }
                        })
                    })
                });
            }
            // Intake runs on the calling thread: parse errors are answered
            // immediately (they never occupy a worker), well-formed jobs
            // are enqueued by priority.
            for line in input.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        record_io(Err(e));
                        break;
                    }
                };
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match protocol::parse_request(trimmed) {
                    Ok(req) => {
                        submitted.fetch_add(1, Ordering::Relaxed);
                        queue.push(req.priority, req);
                    }
                    Err(e) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        record_io(write_line(&protocol::failure_line(
                            e.id.as_deref(),
                            "error",
                            &e.message,
                        )));
                    }
                }
            }
            queue.close();
        });

        let summary = BatchSummary {
            jobs: submitted.into_inner(),
            ok: ok.into_inner(),
            interrupted: interrupted.into_inner(),
            errors: errors.into_inner(),
            cache_hits: self.cache.hits() - hits0,
            cache_misses: self.cache.misses() - misses0,
        };
        record_io(write_line(&protocol::done_line(
            summary.jobs,
            summary.ok,
            summary.interrupted,
            summary.errors,
            summary.cache_hits,
            summary.cache_misses,
        )));
        match io_failure.into_inner().expect("io slot poisoned") {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    }

    /// Serves batches over a unix domain socket: each connection is one
    /// batch (requests until the peer shuts down its write side, then
    /// the summary). Connections are handled sequentially and share the
    /// server's cache and warm engines. `max_connections` bounds the
    /// accept loop (`None` serves forever).
    ///
    /// # Errors
    ///
    /// Binding or accepting on the socket. Per-connection I/O failures
    /// are contained: the connection is dropped, the loop continues.
    #[cfg(unix)]
    pub fn run_unix(
        &self,
        path: &std::path::Path,
        max_connections: Option<usize>,
    ) -> io::Result<()> {
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        for (served, stream) in listener.incoming().enumerate() {
            let stream = stream?;
            let reader = io::BufReader::new(stream.try_clone()?);
            if let Err(e) = self.run_batch(reader, &stream) {
                eprintln!("serve: connection dropped: {e}");
            }
            if max_connections.is_some_and(|m| served + 1 >= m) {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Loads (or reuses) a parsed circuit by path. Parsed AIGs are kept
    /// for the server's lifetime — batch traffic re-references the same
    /// few library files over and over.
    ///
    /// Each circuit is **statically reduced** (ternary-fixpoint sweep)
    /// once at load time, so every downstream cache key is computed on
    /// the reduced fingerprint: structurally different files that sweep
    /// to the same circuit share one cache entry, and every analysis
    /// runs on the smaller equisatisfiable form. The interface is
    /// preserved exactly, so witnesses replay unchanged.
    fn circuit(&self, path: &str) -> Result<Arc<Aig>, String> {
        if let Some(hit) = self.circuits.lock().expect("store poisoned").get(path) {
            return Ok(Arc::clone(hit));
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let parsed = aiger::from_ascii(&text).map_err(|e| format!("cannot parse '{path}': {e}"))?;
        let aig = Arc::new(axmc_absint::sweep(&parsed).0);
        self.circuits
            .lock()
            .expect("store poisoned")
            .insert(path.to_string(), Arc::clone(&aig));
        Ok(aig)
    }

    /// Runs one job end to end. Returns the `result` object (a pure
    /// function of the query — byte-identical on cache replay) and
    /// whether the leading query was already cached when the job began.
    fn execute(&self, req: &Request) -> Result<(Json, bool), JobFailure> {
        if req.kind == JobKind::Characterize {
            return self.execute_characterize(req);
        }
        let golden_path = req
            .golden
            .as_deref()
            .ok_or_else(|| String::from("missing required field 'golden'"))?;
        let golden = self.circuit(golden_path)?;
        let candidate = self.circuit(&req.candidate)?;
        if golden.num_inputs() != candidate.num_inputs()
            || golden.num_outputs() != candidate.num_outputs()
        {
            return Err(format!(
                "golden and candidate interfaces differ ({}→{} vs {}→{})",
                golden.num_inputs(),
                golden.num_outputs(),
                candidate.num_inputs(),
                candidate.num_outputs()
            )
            .into());
        }
        let sequential = golden.num_latches() > 0 || candidate.num_latches() > 0;
        let certify = req.certify.unwrap_or(self.config.certify);
        let mut ctl = ResourceCtl::unlimited();
        if let Some(ms) = req.timeout_ms {
            ctl = ctl.with_timeout(Duration::from_millis(ms));
        } else if let Some(d) = self.config.default_timeout {
            ctl = ctl.with_timeout(d);
        }
        let options = AnalysisOptions::new()
            .with_ctl(ctl)
            .with_certify(certify)
            .with_inprocessing(self.config.inprocess)
            // Sequential analyses are always SAT/BMC; forcing the key's
            // backend field keeps seq cache keys canonical across
            // configurations.
            .with_backend(if sequential {
                Backend::Sat
            } else {
                self.config.backend
            })
            .with_cache(CacheHandle::new(self.cache.clone()));

        if sequential {
            self.execute_seq(req, &golden, &candidate, options)
        } else {
            self.execute_comb(req, &golden, &candidate, options)
        }
    }

    /// Looks up (or generates, sweeps, and memoizes) the exact golden of
    /// a component class at a width. Stored in the circuit store under a
    /// synthetic key — the leading `\0` cannot appear in a request path,
    /// so builtin goldens and loaded files never collide.
    fn builtin_golden(&self, class: &str, width: usize) -> Result<Arc<Aig>, String> {
        let key = format!("\0builtin/{class}/{width}");
        if let Some(hit) = self.circuits.lock().expect("store poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let netlist = match class {
            "adder" => axmc_circuit::generators::ripple_carry_adder(width),
            "multiplier" => axmc_circuit::generators::array_multiplier(width),
            other => return Err(format!("no builtin golden for class '{other}'")),
        };
        // Swept like every loaded circuit, so cache keys stay canonical.
        let aig = Arc::new(axmc_absint::sweep(&netlist.to_aig()).0);
        self.circuits
            .lock()
            .expect("store poisoned")
            .insert(key, Arc::clone(&aig));
        Ok(aig)
    }

    /// A `kind:"characterize"` job: exact WCE and bit-flip error of one
    /// combinational component, both through the server's result cache.
    /// Without an explicit `golden` the component class and width are
    /// inferred from the candidate's interface (2w inputs and w+1
    /// outputs → w-bit adder; 2w inputs and 2w outputs → w-bit
    /// multiplier) and the exact golden is generated in-process.
    fn execute_characterize(&self, req: &Request) -> Result<(Json, bool), JobFailure> {
        let candidate = self.circuit(&req.candidate)?;
        if candidate.num_latches() > 0 {
            return Err(String::from(
                "characterize jobs take combinational components (the candidate has latches)",
            )
            .into());
        }
        let (ins, outs) = (candidate.num_inputs(), candidate.num_outputs());
        let (class, width) = if ins >= 2 && ins % 2 == 0 && outs == ins / 2 + 1 {
            ("adder", ins / 2)
        } else if ins >= 2 && ins % 2 == 0 && outs == ins {
            ("multiplier", ins / 2)
        } else if req.golden.is_some() {
            ("custom", 0)
        } else {
            return Err(format!(
                "cannot infer the component class from {ins} inputs / {outs} outputs \
                 (adder: 2w in, w+1 out; multiplier: 2w in, 2w out); pass 'golden' explicitly"
            )
            .into());
        };
        let golden = match &req.golden {
            Some(path) => self.circuit(path)?,
            None => self.builtin_golden(class, width)?,
        };
        if golden.num_inputs() != ins || golden.num_outputs() != outs {
            return Err(format!(
                "golden and candidate interfaces differ ({}→{} vs {ins}→{outs})",
                golden.num_inputs(),
                golden.num_outputs(),
            )
            .into());
        }
        let certify = req.certify.unwrap_or(self.config.certify);
        let mut ctl = ResourceCtl::unlimited();
        if let Some(ms) = req.timeout_ms {
            ctl = ctl.with_timeout(Duration::from_millis(ms));
        } else if let Some(d) = self.config.default_timeout {
            ctl = ctl.with_timeout(d);
        }
        let options = AnalysisOptions::new()
            .with_ctl(ctl)
            .with_certify(certify)
            .with_inprocessing(self.config.inprocess)
            .with_backend(self.config.backend)
            .with_cache(CacheHandle::new(self.cache.clone()));
        // The job is "cached" when its leading (WCE) query already was —
        // the same convention the analyze WCE arm uses.
        let wce_key = QueryKey::new(&golden, &candidate, metric::COMB_WCE, &options);
        let cached = self.cache.peek(&wce_key);
        let analyzer = CombAnalyzer::new(&golden, &candidate).with_options(options);
        let wce = analyzer.worst_case_error()?;
        let bit_flip = analyzer.bit_flip_error()?;
        Ok((
            Json::Obj(vec![
                ("kind".into(), Json::Str("characterize".into())),
                ("class".into(), Json::Str(class.into())),
                ("width".into(), Json::Num(width as f64)),
                ("wce".into(), Json::Str(wce.value.to_string())),
                ("bit_flip".into(), Json::Str(bit_flip.value.to_string())),
                (
                    "sat_calls".into(),
                    Json::Num((wce.sat_calls + bit_flip.sat_calls) as f64),
                ),
                (
                    "conflicts".into(),
                    Json::Num((wce.conflicts + bit_flip.conflicts) as f64),
                ),
                ("engine".into(), Json::Str(wce.engine.to_string())),
            ]),
            cached,
        ))
    }

    fn execute_comb(
        &self,
        req: &Request,
        golden: &Aig,
        candidate: &Aig,
        options: AnalysisOptions,
    ) -> Result<(Json, bool), JobFailure> {
        let analyzer = CombAnalyzer::new(golden, candidate).with_options(options.clone());
        match req.metric {
            Metric::Wce => {
                let key = QueryKey::new(golden, candidate, metric::COMB_WCE, &options);
                let cached = self.cache.peek(&key);
                let r = analyzer.worst_case_error()?;
                Ok((
                    Json::Obj(vec![
                        ("metric".into(), Json::Str("wce".into())),
                        ("value".into(), Json::Str(r.value.to_string())),
                        ("sat_calls".into(), Json::Num(r.sat_calls as f64)),
                        ("conflicts".into(), Json::Num(r.conflicts as f64)),
                        ("engine".into(), Json::Str(r.engine.to_string())),
                    ]),
                    cached,
                ))
            }
            Metric::BitFlip => {
                let key = QueryKey::new(golden, candidate, metric::COMB_BIT_FLIP, &options);
                let cached = self.cache.peek(&key);
                let r = analyzer.bit_flip_error()?;
                Ok((
                    Json::Obj(vec![
                        ("metric".into(), Json::Str("bit-flip".into())),
                        ("value".into(), Json::Str(r.value.to_string())),
                        ("sat_calls".into(), Json::Num(r.sat_calls as f64)),
                        ("conflicts".into(), Json::Num(r.conflicts as f64)),
                        ("engine".into(), Json::Str(r.engine.to_string())),
                    ]),
                    cached,
                ))
            }
            Metric::Exceeds => {
                let key = QueryKey::new(golden, candidate, metric::COMB_EXCEEDS, &options)
                    .with_threshold(req.threshold);
                let cached = self.cache.peek(&key);
                let verdict = analyzer.check_error_exceeds(req.threshold)?;
                let mut members = vec![
                    ("metric".into(), Json::Str("exceeds".into())),
                    ("threshold".into(), Json::Str(req.threshold.to_string())),
                ];
                match verdict {
                    Verdict::Proved => {
                        members.push(("verdict".into(), Json::Str("proved".into())));
                    }
                    Verdict::Refuted { witness } => {
                        members.push(("verdict".into(), Json::Str("refuted".into())));
                        let bits: String =
                            witness.iter().map(|&b| if b { '1' } else { '0' }).collect();
                        members.push(("witness_inputs".into(), Json::Str(bits)));
                    }
                    Verdict::Interrupted { best_so_far } => {
                        return Err(JobFailure {
                            interrupted: true,
                            message: format!("interrupted: {best_so_far}"),
                        })
                    }
                }
                Ok((Json::Obj(members), cached))
            }
        }
    }

    fn execute_seq(
        &self,
        req: &Request,
        golden: &Aig,
        candidate: &Aig,
        options: AnalysisOptions,
    ) -> Result<(Json, bool), JobFailure> {
        let analyzer = SeqAnalyzer::new(golden, candidate).with_options(options.clone());
        let k = req.horizon;
        match req.metric {
            Metric::Wce => {
                let key =
                    QueryKey::new(golden, candidate, metric::SEQ_WCE, &options).with_cycles(k);
                let cached = self.cache.peek(&key);
                let r = analyzer.worst_case_error_at(k)?;
                Ok((
                    Json::Obj(vec![
                        ("metric".into(), Json::Str("wce".into())),
                        ("cycles".into(), Json::Num(k as f64)),
                        ("value".into(), Json::Str(r.value.to_string())),
                        ("sat_calls".into(), Json::Num(r.sat_calls as f64)),
                        ("conflicts".into(), Json::Num(r.conflicts as f64)),
                        ("engine".into(), Json::Str(r.engine.to_string())),
                    ]),
                    cached,
                ))
            }
            Metric::BitFlip => {
                let key =
                    QueryKey::new(golden, candidate, metric::SEQ_BIT_FLIP, &options).with_cycles(k);
                let cached = self.cache.peek(&key);
                let r = analyzer.bit_flip_error_at(k)?;
                Ok((
                    Json::Obj(vec![
                        ("metric".into(), Json::Str("bit-flip".into())),
                        ("cycles".into(), Json::Num(k as f64)),
                        ("value".into(), Json::Str(r.value.to_string())),
                        ("sat_calls".into(), Json::Num(r.sat_calls as f64)),
                        ("conflicts".into(), Json::Num(r.conflicts as f64)),
                        ("engine".into(), Json::Str(r.engine.to_string())),
                    ]),
                    cached,
                ))
            }
            Metric::Exceeds => {
                let key = QueryKey::new(golden, candidate, metric::SEQ_EXCEEDS, &options)
                    .with_threshold(req.threshold)
                    .with_cycles(k);
                let cached = self.cache.peek(&key);
                // Sequential threshold probes go through the warm engine
                // pool: the product machine is encoded once per (pair,
                // certified) and reused, with the cache consulted first
                // under exactly the key the analyzers would use.
                let verdict = match self.cache.get(&key) {
                    Some(CachedResult::SeqVerdict(v)) => v,
                    _ => {
                        let pool_key = (golden.pair_fingerprint(candidate), options.certify);
                        let warm = self.probes.lock().expect("pool poisoned").remove(&pool_key);
                        let mut probe = warm.unwrap_or_else(|| analyzer.probe_session());
                        // A pooled instance carries the previous job's
                        // resource envelope; re-arm before probing.
                        probe.set_ctl(options.ctl.clone());
                        let out = probe.check_error_exceeds(req.threshold, k);
                        self.probes
                            .lock()
                            .expect("pool poisoned")
                            .insert(pool_key, probe);
                        let v = out?;
                        if !v.is_interrupted() {
                            self.cache.put(&key, CachedResult::SeqVerdict(v.clone()));
                        }
                        v
                    }
                };
                let mut members = vec![
                    ("metric".into(), Json::Str("exceeds".into())),
                    ("threshold".into(), Json::Str(req.threshold.to_string())),
                    ("cycles".into(), Json::Num(k as f64)),
                ];
                match verdict {
                    Verdict::Proved => {
                        members.push(("verdict".into(), Json::Str("proved".into())));
                    }
                    Verdict::Refuted { witness } => {
                        members.push(("verdict".into(), Json::Str("refuted".into())));
                        members.push(("witness_cycles".into(), Json::Num(witness.len() as f64)));
                        members.push((
                            "witness_error".into(),
                            Json::Str(analyzer.trace_error(&witness).to_string()),
                        ));
                    }
                    Verdict::Interrupted { best_so_far } => {
                        return Err(JobFailure {
                            interrupted: true,
                            message: format!("interrupted: {best_so_far}"),
                        })
                    }
                }
                Ok((Json::Obj(members), cached))
            }
        }
    }
}
