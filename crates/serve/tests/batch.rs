//! End-to-end batches through `Server::run_batch`: correctness against
//! the analyzers, cache replay identity, scheduling order, and the
//! failure paths of the JSONL protocol.

use axmc_aig::aiger;
use axmc_circuit::{approx, generators};
use axmc_obs::json::Json;
use axmc_seq::accumulator;
use axmc_serve::{ServeConfig, Server};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory holding the generated circuit files.
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "axmc-serve-test-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_aig(dir: &std::path::Path, name: &str, aig: &axmc_aig::Aig) -> String {
    let path = dir.join(name);
    std::fs::write(&path, aiger::to_ascii(aig)).unwrap();
    path.to_string_lossy().into_owned()
}

/// Runs one batch over in-memory pipes, returning the response lines.
fn run(server: &Server, requests: &[String]) -> Vec<Json> {
    let input = requests.join("\n");
    let mut output = Vec::new();
    server
        .run_batch(Cursor::new(input), &mut output)
        .expect("batch I/O");
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("every line is JSON"))
        .collect()
}

fn result_of<'a>(lines: &'a [Json], id: &str) -> &'a Json {
    lines
        .iter()
        .find(|l| {
            l.get("event").and_then(Json::as_str) == Some("result")
                && l.get("id").and_then(Json::as_str) == Some(id)
        })
        .unwrap_or_else(|| panic!("no result line for id {id}"))
}

fn done_of(lines: &[Json]) -> &Json {
    lines
        .iter()
        .find(|l| l.get("event").and_then(Json::as_str) == Some("done"))
        .expect("a done line")
}

#[test]
fn comb_batch_matches_analyzers_and_replays_from_cache() {
    let dir = scratch();
    let golden = generators::ripple_carry_adder(6).to_aig();
    let cheap = approx::lower_or_adder(6, 3).to_aig();
    let g = write_aig(&dir, "g.aag", &golden);
    let c = write_aig(&dir, "c.aag", &cheap);

    let expected = axmc_core::CombAnalyzer::new(&golden, &cheap)
        .worst_case_error()
        .unwrap();

    let server = Server::new(ServeConfig::default());
    let job = format!(r#"{{"id":"wce","golden":"{g}","candidate":"{c}","metric":"wce"}}"#);

    let cold = run(&server, std::slice::from_ref(&job));
    let cold_result = result_of(&cold, "wce");
    assert_eq!(
        cold_result.get("cached"),
        Some(&Json::Bool(false)),
        "first sight of the pair is uncached"
    );
    assert_eq!(
        cold_result.get("result").unwrap().get("value"),
        Some(&Json::Str(expected.value.to_string())),
        "served verdict matches a direct CombAnalyzer run"
    );
    let done = done_of(&cold);
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(1.0));
    assert_eq!(done.get("cache_misses").and_then(Json::as_f64), Some(1.0));

    // Same job again: answered from the cache, nested result identical
    // byte for byte.
    let warm = run(&server, &[job]);
    let warm_result = result_of(&warm, "wce");
    assert_eq!(warm_result.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(
        warm_result.get("result").unwrap().render(),
        cold_result.get("result").unwrap().render(),
        "cache replay is byte-identical"
    );
    assert!(done_of(&warm).get("cache_hits").and_then(Json::as_f64) >= Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_jobs_in_one_batch_hit_the_cache_with_one_worker() {
    let dir = scratch();
    let g = write_aig(&dir, "g.aag", &generators::ripple_carry_adder(5).to_aig());
    let c = write_aig(&dir, "c.aag", &approx::lower_or_adder(5, 2).to_aig());
    let server = Server::new(ServeConfig::default()); // jobs: 1 → no miss race
    let job = |id: &str| {
        format!(
            r#"{{"id":"{id}","golden":"{g}","candidate":"{c}","metric":"exceeds","threshold":3}}"#
        )
    };
    let lines = run(&server, &[job("a"), job("b"), job("c")]);
    let cached: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|id| result_of(&lines, id).get("cached").cloned().unwrap())
        .collect();
    assert_eq!(
        cached,
        [Json::Bool(false), Json::Bool(true), Json::Bool(true)],
        "with a single worker, duplicates of a completed job are cache hits"
    );
    let done = done_of(&lines);
    assert_eq!(done.get("cache_hits").and_then(Json::as_f64), Some(2.0));
    assert_eq!(done.get("cache_misses").and_then(Json::as_f64), Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_jobs_use_the_warm_probe_pool_and_cache() {
    let dir = scratch();
    let golden = accumulator(&generators::ripple_carry_adder(5), 5);
    let cheap = accumulator(&approx::lower_or_adder(5, 2), 5);
    let g = write_aig(&dir, "g.aag", &golden);
    let c = write_aig(&dir, "c.aag", &cheap);

    let expected = axmc_core::SeqAnalyzer::new(&golden, &cheap)
        .check_error_exceeds(6, 4)
        .unwrap();

    let server = Server::new(ServeConfig::default());
    let probe = |id: &str, t: u32| {
        format!(
            r#"{{"id":"{id}","golden":"{g}","candidate":"{c}","metric":"exceeds","threshold":{t},"horizon":4}}"#
        )
    };
    // Two distinct thresholds (second reuses the warm engine), then a
    // repeat of the first (cache hit).
    let lines = run(
        &server,
        &[probe("t6", 6), probe("t1000", 1000), probe("t6-again", 6)],
    );
    let first = result_of(&lines, "t6").get("result").unwrap();
    let verdict = first.get("verdict").and_then(Json::as_str).unwrap();
    assert_eq!(
        verdict,
        if expected.is_refuted() {
            "refuted"
        } else {
            "proved"
        },
        "served verdict matches a direct SeqAnalyzer probe"
    );
    if verdict == "refuted" {
        let err: u128 = first
            .get("witness_error")
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        assert!(err > 6, "replayed witness error exceeds the threshold");
    }
    let again = result_of(&lines, "t6-again");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(
        again.get("result").unwrap().render(),
        first.render(),
        "sequential cache replay is byte-identical"
    );
    assert!(done_of(&lines).get("cache_hits").and_then(Json::as_f64) >= Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_errors_are_answered_in_band_and_do_not_sink_the_batch() {
    let dir = scratch();
    let g = write_aig(&dir, "g.aag", &generators::ripple_carry_adder(4).to_aig());
    let c = write_aig(&dir, "c.aag", &approx::lower_or_adder(4, 2).to_aig());
    let server = Server::new(ServeConfig::default());
    let lines = run(
        &server,
        &[
            "this is not json".to_string(),
            format!(r#"{{"id":"bad-metric","golden":"{g}","candidate":"{c}","metric":"huh"}}"#),
            format!(
                r#"{{"id":"missing","golden":"{dir}/nope.aag","candidate":"{c}","metric":"wce"}}"#,
                dir = dir.display()
            ),
            format!(r#"{{"id":"good","golden":"{g}","candidate":"{c}","metric":"wce"}}"#),
        ],
    );
    let bad = result_of(&lines, "bad-metric");
    assert_eq!(bad.get("status").and_then(Json::as_str), Some("error"));
    let missing = result_of(&lines, "missing");
    assert_eq!(missing.get("status").and_then(Json::as_str), Some("error"));
    let good = result_of(&lines, "good");
    assert_eq!(good.get("status").and_then(Json::as_str), Some("ok"));
    let done = done_of(&lines);
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(1.0));
    // Two in-band errors (unknown metric never enqueues; unreadable file
    // fails in the worker) plus the unparseable line.
    assert_eq!(done.get("errors").and_then(Json::as_f64), Some(3.0));
    assert_eq!(done.get("jobs").and_then(Json::as_f64), Some(2.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn priorities_run_high_first_with_a_single_worker() {
    let dir = scratch();
    let g = write_aig(&dir, "g.aag", &generators::ripple_carry_adder(4).to_aig());
    let c = write_aig(&dir, "c.aag", &approx::lower_or_adder(4, 2).to_aig());
    let server = Server::new(ServeConfig::default());
    // The single worker only starts popping once something is queued;
    // with all four enqueued before the first finishes, completion order
    // follows (priority, arrival). Use distinct thresholds to keep every
    // job a genuine (cheap) solve.
    let job = |id: &str, pri: i64, t: u32| {
        format!(
            r#"{{"id":"{id}","golden":"{g}","candidate":"{c}","metric":"exceeds","threshold":{t},"priority":{pri}}}"#
        )
    };
    let lines = run(
        &server,
        &[
            job("low-1", 0, 1),
            job("low-2", 0, 2),
            job("high-1", 9, 3),
            job("high-2", 9, 4),
        ],
    );
    let order: Vec<_> = lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some("result"))
        .map(|l| l.get("id").and_then(Json::as_str).unwrap().to_string())
        .collect();
    // The worker may grab one job before the high-priority ones arrive;
    // beyond that first pick the order must be priority-then-FIFO.
    let tail: Vec<_> = order
        .iter()
        .filter(|id| *id != &order[0])
        .cloned()
        .collect();
    let expect_tail: Vec<String> = ["high-1", "high-2", "low-1", "low-2"]
        .iter()
        .map(|s| s.to_string())
        .filter(|s| s != &order[0])
        .collect();
    assert_eq!(tail, expect_tail, "full order was {order:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_zero_reports_interrupted_not_error() {
    let dir = scratch();
    // Big enough that the solve cannot finish within a zero deadline.
    let g = write_aig(&dir, "g.aag", &generators::ripple_carry_adder(24).to_aig());
    let c = write_aig(&dir, "c.aag", &approx::lower_or_adder(24, 12).to_aig());
    let server = Server::new(ServeConfig::default());
    let lines = run(
        &server,
        &[format!(
            r#"{{"id":"rushed","golden":"{g}","candidate":"{c}","metric":"wce","timeout_ms":0}}"#
        )],
    );
    let r = result_of(&lines, "rushed");
    assert_eq!(r.get("status").and_then(Json::as_str), Some("interrupted"));
    let done = done_of(&lines);
    assert_eq!(done.get("interrupted").and_then(Json::as_f64), Some(1.0));
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(0.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_batches_across_connections_with_a_shared_cache() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    let dir = scratch();
    let g = write_aig(&dir, "g.aag", &generators::ripple_carry_adder(5).to_aig());
    let c = write_aig(&dir, "c.aag", &approx::lower_or_adder(5, 2).to_aig());
    let socket = dir.join("axmc.sock");
    let server = Arc::new(Server::new(ServeConfig::default()));
    let listener = {
        let server = Arc::clone(&server);
        let socket = socket.clone();
        std::thread::spawn(move || server.run_unix(&socket, Some(2)))
    };
    // Wait for the socket file to appear.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let job = format!(r#"{{"id":"j","golden":"{g}","candidate":"{c}","metric":"wce"}}"#);
    let mut cached_flags = Vec::new();
    for _ in 0..2 {
        let mut stream = UnixStream::connect(&socket).expect("connect");
        writeln!(stream, "{job}").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        for line in BufReader::new(stream).lines() {
            let doc = Json::parse(&line.unwrap()).unwrap();
            if doc.get("event").and_then(Json::as_str) == Some("result") {
                cached_flags.push(doc.get("cached").cloned().unwrap());
            }
        }
    }
    listener.join().unwrap().expect("listener");
    assert_eq!(
        cached_flags,
        [Json::Bool(false), Json::Bool(true)],
        "the second connection reuses the first connection's cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn characterize_jobs_infer_golden_and_replay_from_cache() {
    let dir = scratch();
    let trunc = write_aig(
        &dir,
        "add4_trunc2.aag",
        &approx::truncated_adder(4, 2).to_aig(),
    );
    let server = Server::new(ServeConfig::default());

    // Cold run: no `golden` field — the server infers "adder, width 4"
    // from the interface and synthesizes the exact ripple-carry golden.
    let cold = run(
        &server,
        &[format!(
            r#"{{"id":"ch1","kind":"characterize","candidate":"{trunc}"}}"#
        )],
    );
    let r1 = result_of(&cold, "ch1");
    assert_eq!(r1.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(r1.get("cached"), Some(&Json::Bool(false)));
    let body1 = r1.get("result").expect("nested result");
    assert_eq!(
        body1.get("kind").and_then(Json::as_str),
        Some("characterize")
    );
    assert_eq!(body1.get("class").and_then(Json::as_str), Some("adder"));
    assert_eq!(body1.get("width").and_then(Json::as_f64), Some(4.0));
    // truncated_adder(4, 2) has a known worst-case error of 2^(2+1) - 2.
    assert_eq!(body1.get("wce").and_then(Json::as_str), Some("6"));
    assert!(body1.get("bit_flip").and_then(Json::as_str).is_some());
    assert!(body1.get("engine").and_then(Json::as_str).is_some());

    // Second batch: the same component replays from the result cache and
    // the nested result object is byte-identical to the cold run.
    let warm = run(
        &server,
        &[format!(
            r#"{{"id":"ch2","kind":"characterize","candidate":"{trunc}"}}"#
        )],
    );
    let r2 = result_of(&warm, "ch2");
    assert_eq!(r2.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(r2.get("result"), Some(body1));
    let done = done_of(&warm);
    assert!(done.get("cache_hits").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);

    // An explicit golden still works and an analyze job without a golden
    // still fails in-band, even after characterize relaxed the field.
    let golden = write_aig(
        &dir,
        "add4_exact.aag",
        &generators::ripple_carry_adder(4).to_aig(),
    );
    let mixed = run(
        &server,
        &[
            format!(
                r#"{{"id":"ch3","kind":"characterize","golden":"{golden}","candidate":"{trunc}"}}"#
            ),
            format!(r#"{{"id":"a1","candidate":"{trunc}","metric":"wce"}}"#),
        ],
    );
    let r3 = result_of(&mixed, "ch3");
    assert_eq!(r3.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        r3.get("result")
            .and_then(|b| b.get("wce"))
            .and_then(Json::as_str),
        Some("6")
    );
    let a1 = result_of(&mixed, "a1");
    assert_eq!(a1.get("status").and_then(Json::as_str), Some("error"));
    let _ = std::fs::remove_dir_all(&dir);
}
