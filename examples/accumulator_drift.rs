//! Sequential error drift: what a combinational error number hides.
//!
//! The same approximate adder is analyzed twice: once in isolation
//! (combinational worst-case error) and once embedded in an 8-bit
//! accumulator, where the paper's sequential analysis shows the error
//! *growing with every cycle* — the combinational figure wildly
//! understates the system-level damage. A feed-forward FIR filter built
//! from the same adder is analyzed for contrast: its error plateaus, and
//! k-induction can certify an unbounded error bound for the pipeline
//! version.
//!
//! Run with: `cargo run --release --example accumulator_drift`

use axmc::circuit::{approx, generators};
use axmc::seq::{accumulator, fir_moving_sum, registered_alu};
use axmc::{CombAnalyzer, InductionOptions, SeqAnalyzer, Verdict};

fn main() -> Result<(), axmc::AnalysisError> {
    let width = 8;
    let horizon = 8;
    let exact = generators::ripple_carry_adder(width);
    let cheap = approx::truncated_adder(width, 1);

    // Combinational view.
    let g = exact.to_aig();
    let c = cheap.to_aig();
    let comb_wce = CombAnalyzer::new(&g, &c).worst_case_error()?;
    println!("truncated adder ({width}-bit, cut 1):");
    println!("  combinational WCE            = {}", comb_wce.value);

    // Inside an accumulator: feedback lets the error accumulate.
    let acc_g = accumulator(&exact, width);
    let acc_c = accumulator(&cheap, width);
    let acc = SeqAnalyzer::new(&acc_g, &acc_c);
    let earliest = acc.earliest_error(horizon)?;
    println!(
        "  accumulator: earliest visible error at cycle {:?}",
        earliest.cycle.expect("diverges")
    );
    let profile = acc.error_profile(horizon)?;
    println!("  accumulator: WCE@k profile   = {:?}", profile.profile);
    println!("  accumulator: growth          = {:?}", profile.growth());

    // Inside a FIR filter: feed-forward, the error plateaus.
    let fir_g = fir_moving_sum(&exact, width, 4);
    let fir_c = fir_moving_sum(&cheap, width, 4);
    let fir = SeqAnalyzer::new(&fir_g, &fir_c);
    let fir_profile = fir.error_profile(horizon)?;
    println!("  fir(4 taps): WCE@k profile   = {:?}", fir_profile.profile);
    println!(
        "  fir(4 taps): growth          = {:?}",
        fir_profile.growth()
    );

    // Registered ALU: prove an unbounded bound by k-induction.
    let alu_g = registered_alu(&exact, width);
    let alu_c = registered_alu(&cheap, width);
    let alu = SeqAnalyzer::new(&alu_g, &alu_c);
    let opts = InductionOptions {
        max_k: 4,
        simple_path: false,
        ..InductionOptions::default()
    };
    match alu.prove_error_bound(comb_wce.value, &opts)? {
        Verdict::Proved => println!(
            "  registered ALU: |error| <= {} PROVED for all cycles (k-induction)",
            comb_wce.value
        ),
        other => println!("  registered ALU: proof attempt returned {other:?}"),
    }
    match alu.prove_error_bound(comb_wce.value - 1, &opts)? {
        Verdict::Refuted { witness } => println!(
            "  registered ALU: |error| <= {} refuted by a {}-cycle trace",
            comb_wce.value - 1,
            witness.len()
        ),
        other => println!("  registered ALU: refutation attempt returned {other:?}"),
    }
    Ok(())
}
