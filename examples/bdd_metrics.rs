//! Exact average-case metrics for a truncated adder, via the public
//! `AnalysisOptions` backend API.
//!
//! The BDD engine model-counts the error function, so the mean absolute
//! error and error rate it reports are **exact over all 2^16 inputs** —
//! not sampled estimates — and the worst-case error comes from the same
//! engine's characteristic-function maximum. Compare `Backend::Bdd`
//! against the default SAT engine: the numbers are identical, only the
//! route differs (see `docs/backends.md`).
//!
//! Run with: `cargo run --release --example bdd_metrics`

use axmc::circuit::{approx, generators};
use axmc::core::CombAnalyzer;
use axmc::{AnalysisOptions, Backend};

fn main() -> Result<(), axmc::AnalysisError> {
    let width = 8;
    let cut = 3;
    let golden = generators::ripple_carry_adder(width).to_aig();
    let candidate = approx::truncated_adder(width, cut).to_aig();

    println!("golden    : {width}-bit ripple-carry adder");
    println!("candidate : truncated adder (low {cut} result bits dropped)");
    println!();

    let analyzer = CombAnalyzer::new(&golden, &candidate)
        .with_options(AnalysisOptions::new().with_backend(Backend::Bdd));

    let wce = analyzer.worst_case_error()?;
    println!(
        "worst-case error : {} (engine: {}, {} SAT calls)",
        wce.value, wce.engine, wce.sat_calls
    );

    let avg = analyzer.average_error()?;
    println!("mean abs error   : {:.6} ({})", avg.mae, avg.method);
    println!(
        "error rate       : {:.4} % ({})",
        avg.error_rate * 100.0,
        avg.method
    );
    if let Some(total) = avg.total_error {
        println!(
            "total |error|    : {total} summed over all 2^{} inputs",
            2 * width
        );
    }
    assert!(avg.exact, "BDD metrics carry formal guarantees");

    // The racing Auto portfolio lands on the same exact numbers.
    let auto = CombAnalyzer::new(&golden, &candidate)
        .with_options(AnalysisOptions::new().with_backend(Backend::Auto))
        .worst_case_error()?;
    assert_eq!(auto.value, wce.value);
    println!();
    println!(
        "auto portfolio agrees: WCE {} via {}",
        auto.value, auto.engine
    );
    Ok(())
}
