//! System-aware component selection: pick the cheapest approximate
//! multiplier whose *system-level* error is provably acceptable.
//!
//! The scenario the paper motivates: a MAC unit drives a dot-product
//! datapath, and the designer wants the smallest multiplier such that the
//! accumulated result after a burst of `k` operations is off by at most a
//! budgeted amount. Combinational component error cannot answer this —
//! the MAC's feedback accumulates per-operation errors — so each
//! candidate is judged by precise BMC-based analysis of the full unit.
//!
//! Run with: `cargo run --release --example component_selection`

use axmc::circuit::{approx, generators, AreaModel};
use axmc::seq::mac_wide;
use axmc::SeqAnalyzer;

fn main() -> Result<(), axmc::AnalysisError> {
    let width = 4; // 4x4 multiplier
    let acc_width = 11; // 8-bit products + 3 bits of headroom
    let burst = 4; // cycles of back-to-back MACs
    let budget: u128 = 120; // acceptable |error| of the accumulated result

    let model = AreaModel::nm45();
    let exact_mul = generators::array_multiplier(width);
    let exact_add = generators::ripple_carry_adder(acc_width);
    let golden = mac_wide(&exact_mul, &exact_add, width, acc_width);

    println!(
        "selecting a {width}x{width} multiplier for a MAC: |accumulated error| <= {budget} \
         within {burst} cycles"
    );
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>9}",
        "multiplier", "area[um2]", "comb WCE", "MAC WCE@k", "verdict"
    );

    let mut chosen: Option<(String, f64)> = None;
    for component in approx::multiplier_library(width) {
        let area = component.netlist.area(&model);
        // Component-level error (exhaustive; 8 inputs).
        let comb = axmc::core::exhaustive_stats(&exact_mul.to_aig(), &component.netlist.to_aig());
        // System-level error within the burst, determined precisely.
        let system = mac_wide(&component.netlist, &exact_add, width, acc_width);
        let analyzer = SeqAnalyzer::new(&golden, &system);
        let wce = analyzer.worst_case_error_at(burst)?;
        let ok = wce.value <= budget;
        println!(
            "{:<16} {:>9.1} {:>12} {:>12} {:>9}",
            component.name,
            area,
            comb.wce,
            wce.value,
            if ok { "ACCEPT" } else { "reject" }
        );
        if ok {
            match &chosen {
                Some((_, best)) if *best <= area => {}
                _ => chosen = Some((component.name.clone(), area)),
            }
        }
    }

    match chosen {
        Some((name, area)) => {
            println!();
            println!("selected: {name} ({area:.1} um2) — certificate: BMC-exact WCE within burst");
        }
        None => println!("no approximate multiplier meets the budget; keep the exact one"),
    }
    Ok(())
}
