//! Synthesize an approximate adder with a formal error certificate.
//!
//! Runs the verifiability-driven CGP loop on an 8-bit ripple-carry adder
//! for a spread of worst-case-error thresholds, printing the area saved
//! at each point of the resulting Pareto set — every circuit in it is
//! UNSAT-certified to respect its threshold. The final circuits are
//! re-checked against an independent exhaustive sweep.
//!
//! Run with: `cargo run --release --example evolve_adder`

use axmc::cgp::{pareto_front, threshold_to_wcre, SearchOptions};
use axmc::circuit::generators;
use std::time::Duration;

fn main() {
    let width = 8;
    let golden = generators::ripple_carry_adder(width);
    let thresholds: Vec<u128> = vec![0, 1, 3, 7, 15, 31];

    let base = SearchOptions {
        population: 4,
        max_mutations: 8,
        max_generations: 3_000,
        time_limit: Duration::from_secs(8),
        extra_cols: 8,
        seed: 2024,
        ..SearchOptions::default()
    };

    println!(
        "evolving {width}-bit adders (golden area {:.1} um2)",
        golden.area(&base.area_model)
    );
    println!(
        "{:>9} {:>8} {:>10} {:>8} {:>7} {:>8} {:>9} {:>9}",
        "T", "WCRE[%]", "area[um2]", "rel[%]", "gens", "improves", "UNSATs", "evals/s"
    );
    let points =
        pareto_front(&golden, &thresholds, &base).expect("uncertified front cannot be rejected");
    for point in points {
        let r = &point.result;
        // Independent exhaustive certification of the evolved circuit.
        let mut worst = 0u128;
        for a in 0..(1u128 << width) {
            for b in 0..(1u128 << width) {
                worst = worst.max(golden.eval_binop(a, b).abs_diff(r.netlist.eval_binop(a, b)));
            }
        }
        assert!(worst <= point.threshold, "certificate violated!");
        println!(
            "{:>9} {:>8.3} {:>10.1} {:>8.1} {:>7} {:>8} {:>9} {:>9.1}",
            point.threshold,
            threshold_to_wcre(point.threshold, golden.num_outputs()),
            r.area,
            r.relative_area() * 100.0,
            r.stats.generations,
            r.stats.improvements,
            r.stats.verified_ok,
            r.stats.evals_per_sec(),
        );
    }
    println!();
    println!("every row re-verified exhaustively: evolved WCE <= T holds.");
}
