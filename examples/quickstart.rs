//! Quickstart: measure the error of approximate adders, exactly.
//!
//! Builds an 8-bit golden ripple-carry adder and a set of approximate
//! variants, then determines for each — with formal guarantees — the
//! worst-case error and worst-case bit-flip count, alongside sampled
//! (non-guaranteed) MAE and error-rate estimates.
//!
//! Run with: `cargo run --release --example quickstart`

use axmc::circuit::{approx, generators, AreaModel};
use axmc::core::{sampled_stats, CombAnalyzer};

fn main() -> Result<(), axmc::AnalysisError> {
    let width = 8;
    let model = AreaModel::nm45();
    let golden_nl = generators::ripple_carry_adder(width);
    let golden = golden_nl.to_aig();

    println!(
        "golden: {width}-bit ripple-carry adder, area {:.1} um2",
        golden_nl.area(&model)
    );
    println!();
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "component", "area[um2]", "WCE", "bitflip", "MAE~", "errrate~", "SAT calls"
    );

    for component in approx::adder_library(width) {
        let cand = component.netlist.to_aig();
        let analyzer = CombAnalyzer::new(&golden, &cand);
        let wce = analyzer.worst_case_error()?;
        let bf = analyzer.bit_flip_error()?;
        let sampled = sampled_stats(&golden, &cand, 10_000, 0xA5A5);
        println!(
            "{:<12} {:>9.1} {:>8} {:>8} {:>10.3} {:>9.1}% {:>9}",
            component.name,
            component.netlist.area(&model),
            wce.value,
            bf.value,
            sampled.mae_estimate,
            sampled.error_rate_estimate * 100.0,
            wce.sat_calls + bf.sat_calls,
        );
    }

    println!();
    println!("WCE and bitflip are exact (SAT-certified); MAE~/errrate~ are sampled estimates.");
    Ok(())
}
