//! System-aware synthesis: evolve a component against a **system-level**
//! error certificate.
//!
//! Two searches, same adder, same effort:
//!
//! 1. component-level: accept candidates whose own worst-case error is
//!    within T (classic), then embed the winner in a FIR filter;
//! 2. system-level: accept candidates only when BMC certifies the FIR
//!    filter built around them errs by at most T at its outputs.
//!
//! The feed-forward filter sums four taps through the component, so a
//! system budget of T admits less per-component error than a component
//! budget of T — but the system-level search *knows where the slack is*
//! (which tap positions mask errors) and spends it optimally.
//!
//! Run with: `cargo run --release --example system_aware_synthesis`

use axmc::cgp::{evolve, evolve_in_context, SearchOptions, SequentialContext};
use axmc::circuit::generators;
use axmc::sat::Budget;
use axmc::SeqAnalyzer;
use std::time::Duration;

fn main() -> Result<(), axmc::AnalysisError> {
    let width = 4;
    let taps = 4;
    let horizon = 5;
    let budget_t = 6u128;

    let golden = generators::ripple_carry_adder(width);
    let build = |c: &axmc::circuit::Netlist| axmc::seq::fir_moving_sum(c, width, taps);
    let golden_system = build(&golden);

    let base = SearchOptions {
        threshold: budget_t,
        population: 4,
        max_mutations: 6,
        max_generations: u64::MAX,
        time_limit: Duration::from_secs(10),
        seed: 77,
        extra_cols: 4,
        ..SearchOptions::default()
    };

    // --- 1. Component-level search. ---
    let comp = evolve(&golden, &base).expect("uncertified run");
    let comp_system = build(&comp.netlist);
    let comp_sys_wce = SeqAnalyzer::new(&golden_system, &comp_system)
        .worst_case_error_at(horizon)?
        .value;
    println!(
        "component-level search: area {:.1} um2 ({:.1} %), component WCE <= {budget_t}, \
         resulting FIR output WCE = {comp_sys_wce}",
        comp.area,
        comp.relative_area() * 100.0
    );

    // --- 2. System-level search, same output budget. ---
    let context = SequentialContext {
        build: &build,
        horizon,
        budget: Budget::unlimited().with_conflicts(20_000),
    };
    let sys = evolve_in_context(&golden, &context, &base).expect("uncertified run");
    let sys_system = build(&sys.netlist);
    let sys_sys_wce = SeqAnalyzer::new(&golden_system, &sys_system)
        .worst_case_error_at(horizon)?
        .value;
    println!(
        "system-level search   : area {:.1} um2 ({:.1} %), FIR output WCE = {sys_sys_wce} \
         (certified <= {budget_t} within {horizon} cycles)",
        sys.area,
        sys.relative_area() * 100.0
    );
    assert!(sys_sys_wce <= budget_t, "BMC certificate violated");

    println!();
    println!(
        "the component-level result honours its own bound but its FIR error ({comp_sys_wce}) \
         is unconstrained;\nthe system-level result spends exactly the output budget it was \
         given — the certificate applies\nwhere the designer cares: at the filter's output."
    );
    Ok(())
}
