#!/usr/bin/env bash
# The full local CI gate: formatting, lints, build, tests.
#
# Runs fully offline (--offline everywhere; the workspace has no external
# dependencies, so no registry access is ever needed). Every step must
# pass; the script stops at the first failure.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "== $* =="
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo clippy --workspace --all-targets --offline \
    --features proptest-tests -- -D warnings
run cargo clippy -p axmc-bench --all-targets --offline \
    --features micro-benches -- -D warnings
run cargo build --release --offline

# Prose documentation gate: every relative markdown link must resolve to
# a real file, and every CLI subcommand a doc names in inline code
# (`axmc foo`) must actually exist in `axmc --help` — stale docs fail CI
# the same way stale rustdoc does.
doc_links_check() {
    echo "== doc link check =="
    local axmc=target/release/axmc help fail=0 file dir link target sub
    help=$("$axmc" --help 2>&1 || true)
    for file in ./*.md docs/*.md; do
        [[ -f $file ]] || continue
        dir=$(dirname "$file")
        while IFS= read -r link; do
            [[ -z $link ]] && continue
            target=${link%%#*}
            [[ -z $target ]] && continue
            [[ -e "$dir/$target" ]] \
                || { echo "$file: broken link -> $link"; fail=1; }
        done < <(grep -oE '\]\([^)]+\)' "$file" 2>/dev/null \
                 | sed 's/^](//; s/)$//' \
                 | grep -vE '^(https?:|mailto:|#)' || true)
        while IFS= read -r sub; do
            [[ -z $sub ]] && continue
            grep -qE "(^|[[:space:]])${sub}([[:space:]]|$)" <<<"$help" \
                || { echo "$file: unknown subcommand 'axmc $sub'"; fail=1; }
        done < <(grep -ohE '`axmc [a-z][a-z0-9-]*' "$file" 2>/dev/null \
                 | sed 's/^`axmc //' | sort -u || true)
    done
    (( fail == 0 )) || { echo "documentation drifted from the CLI"; exit 1; }
}
doc_links_check

# Documentation gate: rustdoc must be warning-free (broken intra-doc
# links included) and every doctest must pass, in both feature
# configurations.
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace --offline
run cargo test --workspace -q --offline --doc
run cargo test --workspace -q --offline --doc --features proptest-tests

# Structural linting over everything we ship: the full sequential design
# suite plus the whole approximate-component library. Any error-severity
# diagnostic fails the build.
run cargo run --release --offline --bin axmc -- lint --suite

# Resource-governance smoke: a deliberately tiny deadline on a
# table6-scale instance must exit with the dedicated "interrupted" code
# (10), report a partial result on stdout, and never panic. Run in both
# feature configurations.
timeout_smoke() {
    echo "== timeout smoke ($*) =="
    local dir
    dir=$(mktemp -d)
    cargo run --release --offline "$@" --bin axmc -- \
        gen --kind multiplier --width 16 --out "$dir/g.aag"
    cargo run --release --offline "$@" --bin axmc -- \
        gen --kind trunc-multiplier --width 16 --param 8 --out "$dir/c.aag"
    local rc=0 start=$SECONDS
    cargo run --release --offline "$@" --bin axmc -- \
        analyze --golden "$dir/g.aag" --approx "$dir/c.aag" \
        --timeout 200ms >"$dir/out.txt" 2>"$dir/err.txt" || rc=$?
    cat "$dir/out.txt" "$dir/err.txt"
    [[ $rc -eq 10 ]] || { echo "expected exit code 10, got $rc"; exit 1; }
    grep -q "partial result" "$dir/out.txt" \
        || { echo "no partial result reported"; exit 1; }
    ! grep -q "panicked" "$dir/err.txt" || { echo "engine panicked"; exit 1; }
    (( SECONDS - start <= 10 )) \
        || { echo "interrupted run overshot its deadline"; exit 1; }
    rm -rf "$dir"
}
timeout_smoke
timeout_smoke --features proptest-tests

# Observability smoke: record a full run-dir artifact bundle, assert the
# profile report replays deterministically, check the flamegraph output
# is well-formed, and gate wall-clock against the committed baseline.
# The threshold is deliberately generous (CI machines vary wildly); the
# gate exists to catch order-of-magnitude regressions, with --min-ms
# keeping sub-noise phases out of the verdict.
obs_smoke() {
    echo "== observability smoke =="
    local dir
    dir=$(mktemp -d)
    cargo run --release --offline --bin axmc -- \
        gen --kind adder --width 10 --out "$dir/g.aag"
    cargo run --release --offline --bin axmc -- \
        gen --kind trunc-adder --width 10 --param 4 --out "$dir/c.aag"
    cargo run --release --offline --bin axmc -- \
        analyze --golden "$dir/g.aag" --approx "$dir/c.aag" \
        --average --run-dir "$dir/run"
    for f in manifest.json trace.jsonl metrics.json; do
        [[ -s "$dir/run/$f" ]] || { echo "missing run artifact $f"; exit 1; }
    done
    cargo run --release --offline --bin axmc -- \
        report --run-dir "$dir/run" --flame "$dir/flame.txt" >"$dir/report1.txt"
    cargo run --release --offline --bin axmc -- \
        report --run-dir "$dir/run" --flame "$dir/flame.txt" >"$dir/report2.txt"
    cmp "$dir/report1.txt" "$dir/report2.txt" \
        || { echo "report replay is not deterministic"; exit 1; }
    grep -q "100.0%  run" "$dir/report1.txt" \
        || { echo "profile tree has no full-coverage run root"; exit 1; }
    grep -q ";" "$dir/flame.txt" \
        || { echo "flamegraph output has no nested frame"; exit 1; }
    cargo run --release --offline --bin axmc -- \
        bench-diff --base "$dir/run" --new "$dir/run" \
        || { echo "self-diff must never regress"; exit 1; }
    cargo run --release --offline --bin axmc -- \
        bench-diff --base bench_results/ci_baseline_metrics.json \
        --new "$dir/run" --threshold 2000 --min-ms 50
    rm -rf "$dir"
}
obs_smoke

# Serve smoke: a 3-job batch (one byte-for-byte duplicate) over stdin
# must return the same verdict as single-shot analyze, answer the
# duplicate from the structural-hash cache (visible both in the batch
# summary and in the serve.cache.hit counter), and stream one JSON
# object per line. --jobs 1 keeps the duplicate a deterministic hit: with
# several workers two identical in-flight jobs can both miss (benign —
# both compute the same verdict — but not a testable guarantee).
serve_smoke() {
    echo "== serve smoke =="
    local dir
    dir=$(mktemp -d)
    cargo run --release --offline --bin axmc -- \
        gen --kind adder --width 8 --out "$dir/g.aag"
    cargo run --release --offline --bin axmc -- \
        gen --kind loa-adder --width 8 --param 4 --out "$dir/c.aag"
    cargo run --release --offline --bin axmc -- \
        analyze --golden "$dir/g.aag" --approx "$dir/c.aag" >"$dir/analyze.txt"
    local expected
    expected=$(grep "worst-case error" "$dir/analyze.txt" | grep -o '[0-9]\+' | head -1)
    {
        echo "{\"id\":\"a\",\"golden\":\"$dir/g.aag\",\"candidate\":\"$dir/c.aag\",\"metric\":\"wce\"}"
        echo "{\"id\":\"b\",\"golden\":\"$dir/g.aag\",\"candidate\":\"$dir/c.aag\",\"metric\":\"exceeds\",\"threshold\":3}"
        echo "{\"id\":\"a2\",\"golden\":\"$dir/g.aag\",\"candidate\":\"$dir/c.aag\",\"metric\":\"wce\"}"
    } | cargo run --release --offline --bin axmc -- \
        serve --jobs 1 --metrics >"$dir/serve.txt"
    grep -q "\"id\":\"a\".*\"cached\":false.*\"value\":\"$expected\"" "$dir/serve.txt" \
        || { echo "serve verdict disagrees with analyze ($expected)"; exit 1; }
    grep -q "\"id\":\"a2\".*\"cached\":true.*\"value\":\"$expected\"" "$dir/serve.txt" \
        || { echo "duplicate job was not served from the cache"; exit 1; }
    grep -q '"event":"done".*"ok":3' "$dir/serve.txt" \
        || { echo "batch summary missing or incomplete"; exit 1; }
    grep -q '"cache_hits":1' "$dir/serve.txt" \
        || { echo "batch summary shows no cache hit"; exit 1; }
    grep -q "serve.cache.hit" "$dir/serve.txt" \
        || { echo "serve.cache.hit missing from --metrics"; exit 1; }
    rm -rf "$dir"
}
serve_smoke

# Characterize smoke: sweep a 3-component import library at width 4,
# then re-run against the same table file. The second run must answer
# every component from the table (cross-process warm reuse keyed on the
# pair fingerprint + backend) without touching a solver, and the known
# worst-case error of the cut-2 truncated adder pins the metrics.
characterize_smoke() {
    echo "== characterize smoke =="
    local dir
    dir=$(mktemp -d)
    mkdir "$dir/lib"
    cargo run --release --offline --bin axmc -- \
        gen --kind trunc-adder --width 4 --param 2 --out "$dir/lib/add4_trunc2.aag"
    cargo run --release --offline --bin axmc -- \
        gen --kind loa-adder --width 4 --param 2 --out "$dir/lib/add4_loa2.aag"
    cargo run --release --offline --bin axmc -- \
        gen --kind trunc-multiplier --width 4 --param 2 --out "$dir/lib/mul4_trunc2.aag"
    cargo run --release --offline --bin axmc -- \
        characterize --library "$dir/lib" --kinds imports --width 4 \
        --out "$dir/table.jsonl" >"$dir/cold.txt"
    grep -q "characterized 3 components (0 reused, 3 computed" "$dir/cold.txt" \
        || { echo "cold sweep did not compute all 3 imports"; exit 1; }
    grep -q '"name":"add4_trunc2"' "$dir/table.jsonl" \
        || { echo "import missing from the table"; exit 1; }
    grep '"name":"add4_trunc2"' "$dir/table.jsonl" | grep -q '"wce":"6"' \
        || { echo "wrong WCE for the cut-2 truncated adder"; exit 1; }
    cargo run --release --offline --bin axmc -- \
        characterize --library "$dir/lib" --kinds imports --width 4 \
        --out "$dir/table.jsonl" >"$dir/warm.txt"
    grep -q "characterized 3 components (3 reused, 0 computed" "$dir/warm.txt" \
        || { echo "second run did not reuse the existing table"; exit 1; }
    rm -rf "$dir"
}
characterize_smoke

# Static-tier smoke: a self-pair is decidable by the abstract
# interpretation tier alone, so `--engine static` must report both
# metrics as statically decided and the --metrics table must show the
# tier's counters and *no* solver activity at all (no sat.solve/bdd
# entries). An undecided query must still exit 0 with a certified
# interval instead of guessing.
static_smoke() {
    echo "== static tier smoke =="
    local dir
    dir=$(mktemp -d)
    cargo run --release --offline --bin axmc -- \
        gen --kind adder --width 8 --out "$dir/g.aag"
    cargo run --release --offline --bin axmc -- \
        analyze --golden "$dir/g.aag" --approx "$dir/g.aag" \
        --engine static --metrics >"$dir/static.txt"
    grep -q "worst-case error.*: 0 (decided statically, no solver)" "$dir/static.txt" \
        || { echo "self-pair WCE not decided statically"; exit 1; }
    grep -q "bit-flip error.*: 0 (decided statically, no solver)" "$dir/static.txt" \
        || { echo "self-pair bit-flip not decided statically"; exit 1; }
    grep -q "absint.decided" "$dir/static.txt" \
        || { echo "absint.decided counter missing from --metrics"; exit 1; }
    grep -q "absint.reduced_nodes" "$dir/static.txt" \
        || { echo "absint.reduced_nodes counter missing from --metrics"; exit 1; }
    ! grep -Eq "sat\.solve|bdd\." "$dir/static.txt" \
        || { echo "a solver ran on a statically decided query"; exit 1; }
    cargo run --release --offline --bin axmc -- \
        gen --kind loa-adder --width 8 --param 4 --out "$dir/c.aag"
    cargo run --release --offline --bin axmc -- \
        analyze --golden "$dir/g.aag" --approx "$dir/c.aag" \
        --engine static >"$dir/undecided.txt" \
        || { echo "undecided static query must still exit 0"; exit 1; }
    grep -Eq "decided statically|certified interval" "$dir/undecided.txt" \
        || { echo "undecided query reported neither value nor interval"; exit 1; }
    rm -rf "$dir"
}
static_smoke

# Incremental-BMC smoke: the BMC depth ladder must extend one growing
# solver instead of re-encoding the unrolled miter per depth. Doubling
# the horizon of a sequential analysis must therefore scale the
# sat.vars.created metric roughly linearly (a re-encoding ladder is
# quadratic: 1+2+..+k frames instead of k). The 2.5x allowance absorbs
# the horizon-dependent threshold probes on top of the linear frames.
incremental_bmc_smoke() {
    echo "== incremental BMC smoke =="
    local dir
    dir=$(mktemp -d)
    cargo run --release --offline --bin axmc -- \
        gen --kind accumulator --width 6 --out "$dir/g.aag"
    cargo run --release --offline --bin axmc -- \
        gen --kind trunc-accumulator --width 6 --param 2 --out "$dir/c.aag"
    local v4 v8
    for h in 4 8; do
        cargo run --release --offline --bin axmc -- \
            analyze --golden "$dir/g.aag" --approx "$dir/c.aag" \
            --horizon "$h" --metrics >"$dir/out$h.txt"
    done
    v4=$(grep "sat.vars.created" "$dir/out4.txt" | grep -o '[0-9]\+' | head -1)
    v8=$(grep "sat.vars.created" "$dir/out8.txt" | grep -o '[0-9]\+' | head -1)
    [[ -n $v4 && -n $v8 && $v4 -gt 0 ]] \
        || { echo "sat.vars.created missing from --metrics"; exit 1; }
    echo "sat.vars.created: horizon 4 -> $v4, horizon 8 -> $v8"
    (( v8 * 10 <= v4 * 25 )) \
        || { echo "depth ladder re-encodes: vars grew ${v8}/${v4} (> 2.5x)"; exit 1; }
    rm -rf "$dir"
}
incremental_bmc_smoke

# Throughput gate for the static tier's costliest consumer: the T5
# harness (CGP evaluations/second — every candidate now passes the
# static pre-screen before a solver sees it) must not regress against
# the committed quick-scale baseline. Same generous threshold philosophy
# as the obs gate: this catches order-of-magnitude cliffs, not noise.
t5_gate() {
    echo "== T5 threshold-search bench gate =="
    local dir
    dir=$(mktemp -d)
    AXMC_METRICS_DIR="$dir" run cargo run --release --offline \
        -p axmc-bench --bin table5_evals_per_sec
    cargo run --release --offline --bin axmc -- \
        bench-diff --base bench_results/t5_baseline_metrics.quick.json \
        --new "$dir/T5_metrics.quick.json" --threshold 2000 --min-ms 50
    rm -rf "$dir"
}
t5_gate

# SAT-speed gate: the T7 harness times the raw engines (SAT vs BDD vs
# the portfolio) on every row, so a regression in the SAT hot path —
# encoding, propagation, inprocessing — shows up here even when the
# higher-level searches mask it. bench-diff exits 12 past the threshold.
t7_gate() {
    echo "== T7 multi-backend bench gate =="
    local dir
    dir=$(mktemp -d)
    AXMC_METRICS_DIR="$dir" run cargo run --release --offline \
        -p axmc-bench --bin table7_bdd_average_error
    cargo run --release --offline --bin axmc -- \
        bench-diff --base bench_results/t7_baseline_metrics.quick.json \
        --new "$dir/T7_metrics.quick.json" --threshold 2000 --min-ms 50
    rm -rf "$dir"
}
t7_gate

# Characterization-throughput gate: the T8 harness sweeps the builtin
# library cold and warm (shared in-process query cache), so both the
# per-component analysis cost and the cache replay path are timed.
# Same order-of-magnitude threshold as the other bench gates.
t8_gate() {
    echo "== T8 characterization bench gate =="
    local dir
    dir=$(mktemp -d)
    AXMC_METRICS_DIR="$dir" run cargo run --release --offline \
        -p axmc-bench --bin table8_characterize
    cargo run --release --offline --bin axmc -- \
        bench-diff --base bench_results/t8_baseline_metrics.quick.json \
        --new "$dir/T8_metrics.quick.json" --threshold 2000 --min-ms 50
    rm -rf "$dir"
}
t8_gate

# The certified-solve suite (DRAT proof logging + in-tree checker,
# including the corrupted-proof rejection paths), in both feature
# configurations.
run cargo test -q --offline --test certify
run cargo test -q --offline --test certify --features proptest-tests

run cargo test --workspace -q --offline
run cargo test --workspace -q --offline --features proptest-tests
run cargo bench -p axmc-bench --features micro-benches --offline --no-run

# Concurrency stress: loop the determinism suite and the worker-pool
# tests with varying worker counts to shake out scheduling-dependent
# bugs a single run can miss. Even iterations run with the proptest
# feature config so the suite is exercised in both configurations.
for i in $(seq 1 10); do
    jobs=$(( (i % 5) * 3 + 2 )) # 5, 8, 11, 14, 2, 5, ...
    features=()
    if (( i % 2 == 0 )); then
        features=(--features proptest-tests)
    fi
    echo "== stress $i/10 (AXMC_TEST_JOBS=$jobs ${features[*]:-default})=="
    AXMC_TEST_JOBS="$jobs" run cargo test -q --offline \
        --test determinism "${features[@]}"
    AXMC_TEST_JOBS="$jobs" run cargo test -q --offline -p axmc-par
done

echo "== CI green =="
