#!/usr/bin/env bash
# The full local CI gate: formatting, lints, build, tests.
#
# Runs fully offline (--offline everywhere; the workspace has no external
# dependencies, so no registry access is ever needed). Every step must
# pass; the script stops at the first failure.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "== $* =="
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo clippy --workspace --all-targets --offline \
    --features proptest-tests -- -D warnings
run cargo clippy -p axmc-bench --all-targets --offline \
    --features micro-benches -- -D warnings
run cargo build --release --offline
run cargo test --workspace -q --offline
run cargo test --workspace -q --offline --features proptest-tests
run cargo bench -p axmc-bench --features micro-benches --offline --no-run

echo "== CI green =="
