#!/usr/bin/env bash
# Regenerates every table and figure of the evaluation.
# Usage: scripts/run_all_experiments.sh [quick|full] [output-dir]
set -u
SCALE="${1:-quick}"
OUT="${2:-bench_results}"
mkdir -p "$OUT"
export AXMC_SCALE="$SCALE"
# Harnesses drop per-phase metrics JSON next to the text transcripts.
export AXMC_METRICS_DIR="$OUT"
HARNESSES=(
  table1_sequential_errors
  table2_mc_vs_simulation
  table3_exactness
  table4_miter_size
  table5_evals_per_sec
  table6_sat_limits
  table7_bdd_average_error
  fig1_error_growth
  fig2_runtime_scaling
  fig3_pareto_fronts
  fig4_masking_amplification
)
for h in "${HARNESSES[@]}"; do
  echo "=== $h ($SCALE) ==="
  cargo run --release -p axmc-bench --bin "$h" | tee "$OUT/$h.$SCALE.txt"
  echo
done
