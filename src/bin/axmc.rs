//! The `axmc` command-line tool: precise error determination and
//! certified approximate-circuit synthesis from the shell.
//!
//! ```text
//! axmc analyze --golden g.aag --approx c.aag [--horizon K] [--prove] [--average] [--certify] [--vcd t.vcd]
//! axmc evolve  --kind adder|multiplier --width N (--wcre P | --config f.cfg) [--certify] [--out c.aag]
//! axmc gen     --kind <component> --width N [--param P] --out c.aag [--verilog c.v]
//! axmc stats   --circuit c.aag
//! axmc lint    [--circuit c.aag] [--suite]
//! ```
//!
//! Circuits are exchanged in ASCII AIGER (`.aag`). `analyze` treats
//! latch-free pairs combinationally and sequential pairs via BMC.

use axmc::aig::{aiger, Aig};
use axmc::cgp::{threshold_to_wcre, wcre_to_threshold};
use axmc::circuit::{approx, generators, AreaModel, Netlist};
use axmc::core::{CombAnalyzer, SeqAnalyzer};
use axmc::mc::InductionOptions;
use axmc::obs::artifact::{self, RunDir};
use axmc::obs::json::Json;
use axmc::obs::sink::{JsonlSink, TeeSink};
use axmc::obs::{Event, Sink, Value};
use axmc::{evolve, AnalysisError, AnalysisOptions, Backend, ResourceCtl, SearchOptions, Verdict};
use std::collections::HashMap;
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A command failure plus the process exit code it maps to (see the
/// `EXIT CODES` section of the usage text).
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 1, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            code: 1,
            message: message.to_string(),
        }
    }
}

impl From<AnalysisError> for CliError {
    fn from(e: AnalysisError) -> Self {
        let code = match &e {
            AnalysisError::Interrupted(_) => 10,
            AnalysisError::CertificateRejected { .. } => 11,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

/// Exits with the conventional SIGPIPE status (128 + 13) instead of a
/// panic backtrace when stdout's reader goes away (`axmc ... | head`).
/// Rust ignores SIGPIPE, so the closed pipe surfaces as a print panic.
fn exit_quietly_on_broken_pipe() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken {
            std::process::exit(141);
        }
        default(info);
    }));
}

fn main() -> ExitCode {
    exit_quietly_on_broken_pipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let specs = match command.as_str() {
        "analyze" => ANALYZE_FLAGS,
        "characterize" => CHARACTERIZE_FLAGS,
        "evolve" => EVOLVE_FLAGS,
        "gen" => GEN_FLAGS,
        "stats" => STATS_FLAGS,
        "lint" => LINT_FLAGS,
        "report" => REPORT_FLAGS,
        "bench-diff" => BENCH_DIFF_FLAGS,
        "serve" => SERVE_FLAGS,
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: unknown command '{other}'");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match parse_flags(command, specs, rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match ObsSession::start(command, &opts, command == "evolve") {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The root of every profile: with tracing on, the whole command runs
    // inside one "run" span so `axmc report` can attribute 100% of the
    // wall-clock. With observability off this is a no-op.
    let run_span = axmc::obs::span("run");
    let result = match command.as_str() {
        "analyze" => cmd_analyze(&opts),
        "characterize" => cmd_characterize(&opts),
        "evolve" => cmd_evolve(&opts),
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "lint" => cmd_lint(&opts),
        "report" => cmd_report(&opts),
        "bench-diff" => cmd_bench_diff(&opts),
        "serve" => cmd_serve(&opts),
        _ => unreachable!("command validated above"),
    };
    run_span.finish();
    obs.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "\
axmc — precise error determination of approximated components with model checking

USAGE:
  axmc analyze --golden G.aag --approx C.aag [--horizon K] [--jobs N]
               [--engine sat|bdd|auto|static] [--timeout D] [--query-timeout D]
               [--prove] [--average] [--certify] [--vcd F.vcd]
               [--inprocess] [--share-clauses]
               [--metrics] [--trace F.jsonl] [--run-dir DIR]
      Exact worst-case / bit-flip error of C against G. Sequential pairs
      are analyzed within K cycles (default 8); --prove additionally
      attempts an unbounded k-induction certificate at the measured WCE.

  axmc characterize [--library DIR] [--width W | --widths W1,W2,...]
                    [--kinds adders,multipliers,imports|all] [--measure wce,bit-flip,avg]
                    [--engine sat|bdd|auto|static] [--jobs N]
                    [--timeout D] [--query-timeout D]
                    [--out TABLE.jsonl] [--markdown TABLE.md] [--no-reuse]
                    [--compose mac|fir|accumulator --horizon K [--tau T] [--taps N]]
                    [--metrics] [--trace F.jsonl] [--run-dir DIR]
      Characterizes a whole library of approximate components at once:
      the in-tree generated adder/multiplier variants at every requested
      width (doubling 4,8,... up to --width, default 8) plus AIGER
      imports from --library DIR (*.aag/*.aig; the component class and
      width are inferred from the interface). Emits an
      axmc-characterize-v1 table — JSONL with --out, rendered markdown
      on stdout and with --markdown — with exact per-component WCE,
      bit-flip and average-case metrics plus engine/timing provenance.
      Re-running with the same --out reuses completed rows whose
      fingerprint, backend and metrics match (disable with --no-reuse).
      With --compose the library picks are instead instantiated inside a
      sequential scenario (MAC array, FIR cascade, accumulator chain),
      analyzed end to end at cycle horizon K, and — given --tau T — the
      cheapest component whose system-level WCE stays <= T is selected.
      See docs/characterize.md.

  axmc evolve --kind adder|multiplier --width N (--wcre P | --config F)
              [--seconds S] [--seed X] [--jobs N] [--engine sat|bdd|auto]
              [--timeout D] [--query-timeout D] [--certify] [--out C.aag]
              [--progress] [--metrics] [--trace F.jsonl] [--run-dir DIR]
      Verifiability-driven CGP synthesis of an approximate circuit whose
      worst-case relative error provably stays below P percent.

  axmc gen --kind KIND --width N [--param P] --out C.aag [--verilog C.v]
      Writes a library circuit as AIGER. KIND: adder, multiplier,
      trunc-adder, loa-adder, spec-adder, trunc-multiplier,
      optrunc-multiplier, kulkarni-multiplier, incrementer; sequential
      (AIGER only, no --verilog): accumulator, trunc-accumulator.

  axmc stats --circuit C.aag
      Structural statistics of an AIGER circuit.

  axmc lint [--circuit C.aag] [--suite]
      Structural and semantic linting. --circuit lints one AIGER file;
      --suite lints every shipped sequential benchmark pair and the whole
      approximate component library. AIGs additionally get the semantic
      rules (ABS001 constant gate in the output cone, ABS002 constant
      output, ABS003 latch never toggles) from the ternary fixpoint.
      Exits nonzero if any error-severity diagnostic is found (warnings
      alone do not fail the run).

  axmc report (--run-dir DIR | --trace F.jsonl) [--flame F.txt]
      Reconstructs the hierarchical span tree from a recorded trace and
      prints a self/total time-attribution tree plus per-span latency
      quantile tables (p50/p95/p99). --flame additionally writes the
      profile as collapsed stacks for standard flamegraph tooling.

  axmc bench-diff --base A --new B [--threshold PCT] [--min-ms MS]
      Compares two timing files — bench harness phase logs or run-dir
      metrics.json files (a directory is read as DIR/metrics.json) —
      and prints the per-phase deltas. Exits with code 12 when any
      phase got slower by more than PCT percent (default 25) while
      taking more than MS milliseconds (default 5, a noise floor).

  axmc serve [--socket PATH [--max-conns N]] [--jobs N]
             [--engine sat|bdd|auto] [--timeout D] [--certify] [--inprocess]
             [--metrics] [--trace F.jsonl] [--run-dir DIR]
      Batch analysis service. Reads analysis jobs as line-delimited JSON
      from stdin (or serves whole batches per connection on a unix
      socket) and streams results back as JSONL. Jobs are scheduled onto
      N workers, higher 'priority' first and FIFO within a priority.
      Completed verdicts are cached by the structural fingerprint of the
      circuit pair plus the full query, so repeated jobs are answered
      without touching a solver (hits/misses are visible per batch in
      the 'done' line and in --metrics as serve.cache.hit/miss).
      --timeout sets the default per-job deadline, overridable per job
      with 'timeout_ms'. See docs/serve.md for the wire protocol.

CERTIFICATION:
  --certify         re-derive every UNSAT verdict: the solver records a
                    DRAT clausal proof and an independent in-tree RUP/DRAT
                    checker validates it before the result is reported.
                    A verdict whose certificate fails validation aborts
                    the run rather than printing an untrusted number.

ENGINES:
  --engine E        analysis backend for the combinational metrics and
                    the evolve fitness oracle (sequential analyses are
                    always SAT/BMC). E is one of:
                      sat   CEGIS threshold search on the CDCL solver —
                            the paper's engine and the default
                      bdd   exact ROBDD characteristic-function engine;
                            a node-budget blow-up degrades to SAT
                      auto  portfolio: consult the static tier (ternary
                            abstract interpretation + concrete probing)
                            first — a decided query launches no solver —
                            then race both engines on the reduced miter,
                            first sound result wins
                      static  the static tier alone: certified interval
                            bounds with no solver at all; undecided
                            queries report their [lo, hi] interval
                    The solver engines are exact — the numbers are
                    identical for every choice; 'static' is exact when it
                    decides and an interval otherwise. See
                    docs/backends.md and docs/static-analysis.md.

PARALLELISM:
  --jobs N          worker threads for candidate verification (evolve) and
                    speculative threshold probes (analyze). Defaults to the
                    machine's available parallelism; must be >= 1. Results
                    are identical for every N — a fixed --seed reproduces
                    the same evolve trajectory byte for byte.

SOLVER TUNING (see docs/solver.md):
  --inprocess       run the solver's between-solves inprocessing pass
                    (subsumption, self-subsuming resolution, vivification)
                    inside every SAT engine. Verdicts are unchanged, and
                    under --certify every simplification is proof-logged
                    and re-checked. analyze and serve only.
  --share-clauses   share strong learned clauses (LBD-filtered) between
                    the --jobs portfolio workers of the threshold
                    searches; imports are RUP-validated before use.
                    Certified verdicts are unaffected, but under tight
                    budgets which probes *finish* may vary run to run.
                    analyze only; needs --jobs >= 2 to have any effect.

RESOURCE GOVERNANCE:
  --timeout D       wall-clock deadline for the whole command. D is a
                    duration like '500ms', '30s', '2m', or plain seconds.
                    An analysis that hits the deadline stops cleanly with
                    a typed partial result carrying the tightest
                    certified bounds reached (exit code 10); evolve
                    returns the best verified circuit found so far.
  --query-timeout D wall-clock cap for every individual solver call; the
                    run continues past a timed-out query with whatever
                    the query had certified.

OBSERVABILITY:
  --metrics         print a summary table of solver/model-checker/search
                    metrics (counters, gauges, log2 histograms) at exit
  --trace F.jsonl   stream structured trace events (one JSON object per
                    line) to F: SAT solves, BMC frames, induction rounds,
                    error-search probes, CGP progress and improvements
  --run-dir DIR     record a complete run artifact bundle under DIR:
                    manifest.json (command, flags, resolved knobs, peak
                    RSS and CPU time), trace.jsonl (the full span/event
                    trace) and metrics.json (final counters, gauges and
                    histogram quantiles). Consumed by `axmc report` and
                    `axmc bench-diff`.
  --progress        (evolve) print a live one-line progress update (with
                    eval rate and time-limit ETA) to stderr at most four
                    times a second; on by default when stderr is a
                    terminal

EXIT CODES:
  0    success
  1    usage, I/O, or parse error
  10   analysis interrupted (deadline, cancellation, or budget); a
       partial result with the tightest certified bounds was reported
  11   a certificate failed validation under --certify; the verdict
       cannot be trusted
  12   bench-diff found a performance regression past the threshold
  141  output pipe closed (conventional SIGPIPE status)";

type Flags = HashMap<String, String>;

/// A flag a subcommand accepts: its name and whether it takes a value
/// (`--name VALUE`) or is a plain switch (`--name`).
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const fn val(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

const ANALYZE_FLAGS: &[FlagSpec] = &[
    val("golden"),
    val("approx"),
    val("horizon"),
    val("engine"),
    val("jobs"),
    val("timeout"),
    val("query-timeout"),
    switch("prove"),
    switch("average"),
    switch("certify"),
    switch("inprocess"),
    switch("share-clauses"),
    val("vcd"),
    switch("metrics"),
    val("trace"),
    val("run-dir"),
];

const CHARACTERIZE_FLAGS: &[FlagSpec] = &[
    val("library"),
    val("width"),
    val("widths"),
    val("kinds"),
    val("measure"),
    val("engine"),
    val("jobs"),
    val("timeout"),
    val("query-timeout"),
    val("out"),
    val("markdown"),
    switch("no-reuse"),
    val("compose"),
    val("horizon"),
    val("tau"),
    val("taps"),
    switch("metrics"),
    val("trace"),
    val("run-dir"),
];

const EVOLVE_FLAGS: &[FlagSpec] = &[
    val("kind"),
    val("width"),
    val("wcre"),
    val("config"),
    val("seconds"),
    val("seed"),
    val("engine"),
    val("jobs"),
    val("timeout"),
    val("query-timeout"),
    val("out"),
    switch("certify"),
    switch("progress"),
    switch("metrics"),
    val("trace"),
    val("run-dir"),
];

const GEN_FLAGS: &[FlagSpec] = &[
    val("kind"),
    val("width"),
    val("param"),
    val("out"),
    val("verilog"),
];

const STATS_FLAGS: &[FlagSpec] = &[val("circuit")];

const LINT_FLAGS: &[FlagSpec] = &[val("circuit"), switch("suite")];

const REPORT_FLAGS: &[FlagSpec] = &[val("run-dir"), val("trace"), val("flame")];

const BENCH_DIFF_FLAGS: &[FlagSpec] = &[val("base"), val("new"), val("threshold"), val("min-ms")];

const SERVE_FLAGS: &[FlagSpec] = &[
    val("socket"),
    val("max-conns"),
    val("jobs"),
    val("engine"),
    val("timeout"),
    switch("certify"),
    switch("inprocess"),
    switch("metrics"),
    val("trace"),
    val("run-dir"),
];

/// Parses `args` against the subcommand's flag table. Unknown flags,
/// repeated flags, and value flags without a value are all hard errors —
/// a typo must never be silently ignored.
fn parse_flags(command: &str, specs: &[FlagSpec], args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, found '{arg}'"));
        };
        let Some(spec) = specs.iter().find(|s| s.name == name) else {
            let known: Vec<String> = specs.iter().map(|s| format!("--{}", s.name)).collect();
            return Err(format!(
                "unknown flag --{name} for '{command}' (expected one of: {})",
                known.join(", ")
            ));
        };
        let value = if spec.takes_value {
            match it.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                Some(v) => return Err(format!("flag --{name} expects a value, found '{v}'")),
                None => return Err(format!("flag --{name} expects a value")),
            }
        } else {
            "true".to_string()
        };
        if out.insert(name.to_string(), value).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(out)
}

/// The CLI's view of the observability stack: set up from `--metrics`,
/// `--trace`, `--progress` and `--run-dir` before the command runs, torn
/// down (sink flushed, artifacts written, summary table printed) after
/// it returns.
struct ObsSession {
    metrics: bool,
    sink_installed: bool,
    run_dir: Option<RunDir>,
    manifest: Vec<(String, Json)>,
    started: Instant,
}

impl ObsSession {
    fn start(command: &str, opts: &Flags, progress_allowed: bool) -> Result<ObsSession, String> {
        let metrics = opts.contains_key("metrics");
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        let mut run_dir = None;
        let mut manifest = Vec::new();
        // `--run-dir` means "record this run" only for the commands that
        // run one; for `report` the same flag names an existing bundle
        // to *read*, which must never be truncated.
        let recording = matches!(command, "analyze" | "characterize" | "evolve" | "serve");
        if let Some(dir) = opts.get("run-dir").filter(|_| recording) {
            let rd = RunDir::create(Path::new(dir))
                .map_err(|e| format!("cannot create run dir '{dir}': {e}"))?;
            let sink = JsonlSink::create(&rd.trace_path())
                .map_err(|e| format!("cannot create trace file in '{dir}': {e}"))?;
            sinks.push(Arc::new(sink));
            // The manifest is written immediately (a crashed run still
            // identifies itself) and rewritten at exit with the final
            // resource-usage block appended.
            manifest = manifest_entries(command, opts);
            rd.write_manifest(manifest.clone())
                .map_err(|e| format!("cannot write manifest in '{dir}': {e}"))?;
            run_dir = Some(rd);
        }
        if let Some(path) = opts.get("trace") {
            let sink = JsonlSink::create(Path::new(path))
                .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
            sinks.push(Arc::new(sink));
        }
        if progress_allowed && (opts.contains_key("progress") || std::io::stderr().is_terminal()) {
            sinks.push(Arc::new(ProgressPrinter));
        }
        let sink_installed = !sinks.is_empty();
        match sinks.len() {
            0 => {}
            1 => axmc::obs::set_sink(sinks.pop().expect("one sink")),
            _ => axmc::obs::set_sink(Arc::new(TeeSink::new(sinks))),
        }
        if metrics || sink_installed {
            axmc::obs::set_enabled(true);
        }
        Ok(ObsSession {
            metrics,
            sink_installed,
            run_dir,
            manifest,
            started: Instant::now(),
        })
    }

    fn finish(self) {
        if axmc::obs::enabled() {
            axmc::obs::proc::record_gauges();
        }
        if let Some(rd) = &self.run_dir {
            let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
            let mut entries = self.manifest;
            entries.push(("proc".to_string(), proc_json()));
            if let Err(e) = rd
                .write_manifest(entries)
                .and_then(|()| rd.write_metrics(&axmc::obs::snapshot(), wall_ms))
            {
                eprintln!("warning: cannot finalize run dir: {e}");
            }
        }
        if self.sink_installed {
            axmc::obs::clear_sink(); // flushes
        }
        if self.metrics {
            print!("{}", axmc::obs::summary::render(&axmc::obs::snapshot()));
        }
    }
}

/// The stable part of a run-dir manifest: the command, its verbatim
/// flags (sorted — flag storage is a hash map) and the resolved knobs
/// the flags defaulted.
fn manifest_entries(command: &str, opts: &Flags) -> Vec<(String, Json)> {
    let mut flags: Vec<(String, Json)> = opts
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    flags.sort_by(|a, b| a.0.cmp(&b.0));
    let mut entries = vec![
        ("command".to_string(), Json::Str(command.to_string())),
        ("flags".to_string(), Json::Obj(flags)),
    ];
    if let Ok(jobs) = jobs_flag(opts) {
        entries.push(("jobs".to_string(), Json::Num(jobs as f64)));
    }
    if let Ok(engine) = engine_flag(opts) {
        entries.push(("engine".to_string(), Json::Str(engine.to_string())));
    }
    if let Ok(seed) = numeric::<u64>(opts, "seed", 1) {
        entries.push(("seed".to_string(), Json::Num(seed as f64)));
    }
    entries
}

/// Peak RSS and CPU time as a manifest block; values the platform does
/// not expose are omitted.
fn proc_json() -> Json {
    let stats = axmc::obs::proc::read();
    let mut obj = Vec::new();
    if let Some(v) = stats.max_rss_kb {
        obj.push(("max_rss_kb".to_string(), Json::Num(v as f64)));
    }
    if let Some(v) = stats.cpu_user_us {
        obj.push(("cpu_user_us".to_string(), Json::Num(v as f64)));
    }
    if let Some(v) = stats.cpu_sys_us {
        obj.push(("cpu_sys_us".to_string(), Json::Num(v as f64)));
    }
    Json::Obj(obj)
}

/// Live progress lines for `evolve --progress`, fed by the search loop's
/// throttled `cgp.progress` events (plus one line per improvement).
struct ProgressPrinter;

fn num(event: &Event, name: &str) -> f64 {
    match event.get(name) {
        Some(Value::U64(v)) => *v as f64,
        Some(Value::I64(v)) => *v as f64,
        Some(Value::F64(v)) => *v,
        _ => 0.0,
    }
}

impl Sink for ProgressPrinter {
    fn emit(&self, event: &Event) {
        use std::io::Write;
        // Progress is commentary, not output: it goes to stderr so piped
        // stdout stays clean. Ignore write errors: a closed pipe must
        // not abort the search.
        let mut out = std::io::stderr();
        let _ = match event.kind.as_str() {
            "cgp.progress" => {
                let elapsed_ms = num(event, "elapsed_ms");
                let limit_ms = num(event, "limit_ms");
                let eta_s = (limit_ms - elapsed_ms).max(0.0) / 1e3;
                writeln!(
                    out,
                    "[gen {:>6}] best area {:.1} um2 | {:.0} evals/s | {} improvements | ETA {:.0}s",
                    num(event, "generation") as u64,
                    num(event, "best_area"),
                    num(event, "evals_per_sec"),
                    num(event, "improvements") as u64,
                    eta_s,
                )
            }
            "cgp.improvement" => writeln!(
                out,
                "[gen {:>6}] improved: area {:.1} um2 ({:.1} % of exact)",
                num(event, "generation") as u64,
                num(event, "area"),
                num(event, "relative_area") * 100.0,
            ),
            _ => Ok(()),
        };
    }
}

fn required<'a>(opts: &'a Flags, name: &str) -> Result<&'a str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn numeric<T: std::str::FromStr>(opts: &Flags, name: &str, default: T) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{name} '{v}'")),
    }
}

/// Parses a human duration: `500ms`, `30s`, `2m`, or a plain (possibly
/// fractional) number of seconds.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let trimmed = text.trim();
    let (number, scale) = if let Some(n) = trimmed.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = trimmed.strip_suffix('s') {
        (n, 1.0)
    } else if let Some(n) = trimmed.strip_suffix('m') {
        (n, 60.0)
    } else {
        (trimmed, 1.0)
    };
    let value: f64 = number
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration '{text}' (try '500ms', '30s', '2m')"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("invalid duration '{text}' (must be >= 0)"));
    }
    Ok(Duration::from_secs_f64(value * scale))
}

/// Builds the run's resource control from `--timeout` (whole-command
/// deadline) and `--query-timeout` (per-solver-call cap).
fn ctl_flags(opts: &Flags) -> Result<ResourceCtl, String> {
    let mut ctl = ResourceCtl::unlimited();
    if let Some(text) = opts.get("timeout") {
        ctl = ctl.with_timeout(parse_duration(text)?);
    }
    if let Some(text) = opts.get("query-timeout") {
        ctl = ctl.with_query_timeout(parse_duration(text)?);
    }
    Ok(ctl)
}

/// Parses `--engine sat|bdd|auto|static` (default: sat — the paper's
/// engine).
fn engine_flag(opts: &Flags) -> Result<Backend, String> {
    match opts.get("engine") {
        None => Ok(Backend::Sat),
        Some(text) => text.parse(),
    }
}

/// Parses `--jobs`: a positive worker count, defaulting to the machine's
/// available parallelism. `--jobs 0` is a hard error, not a silent 1.
fn jobs_flag(opts: &Flags) -> Result<usize, String> {
    let jobs = numeric(opts, "jobs", axmc::par::available_parallelism())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    Ok(jobs)
}

fn load_aig(path: &str) -> Result<Aig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    aiger::from_ascii(&text).map_err(|e| format!("cannot parse '{path}': {e}"))
}

fn save_aig(path: &str, aig: &Aig) -> Result<(), String> {
    std::fs::write(path, aiger::to_ascii(aig)).map_err(|e| format!("cannot write '{path}': {e}"))
}

/// Turns on obs (the checker's verdict counters live there) and returns
/// whether `--certify` was passed.
fn certify_flag(opts: &Flags) -> bool {
    let certify = opts.contains_key("certify");
    if certify {
        axmc::obs::set_enabled(true);
    }
    certify
}

/// Prints how many UNSAT verdicts the in-tree RUP/DRAT checker validated
/// during the run (the engines abort on the first rejected certificate,
/// so reaching this line means every one of them checked out).
fn report_certificates(label: &str) {
    let snapshot = axmc::obs::snapshot();
    let certified = snapshot
        .counters
        .get("check.certified")
        .copied()
        .unwrap_or(0);
    println!("{label}: {certified} UNSAT verdicts re-derived by the RUP/DRAT checker");
}

/// Converts an analysis failure into its exit-coded CLI error, printing
/// the partial result of an interruption to stdout first so a timed-out
/// run still reports the tightest certified bounds it reached.
fn report_analysis_error(e: AnalysisError) -> CliError {
    if let AnalysisError::Interrupted(partial) = &e {
        println!("partial result       : {partial}");
    }
    CliError::from(e)
}

/// Prints one metric line for an analysis-only (`--engine static`) run:
/// the statically decided exact value, or the certified `[lo, hi]`
/// interval when the static tier alone cannot pin it.
fn print_static_metric<T: std::fmt::Display>(
    label: &str,
    result: Result<axmc::ErrorReport<T>, AnalysisError>,
) -> Result<(), CliError> {
    match result {
        Ok(r) => {
            println!("{label}: {} (decided statically, no solver)", r.value);
            Ok(())
        }
        Err(AnalysisError::Interrupted(p)) if p.reason.is_none() => {
            println!(
                "{label}: undecided, certified interval [{}, {}]",
                p.known_low, p.known_high
            );
            Ok(())
        }
        Err(e) => Err(report_analysis_error(e)),
    }
}

fn cmd_analyze(opts: &Flags) -> Result<(), CliError> {
    // Validate the cheap flags before touching the filesystem.
    let horizon: usize = numeric(opts, "horizon", 8)?;
    let engine = engine_flag(opts)?;
    let jobs = jobs_flag(opts)?;
    let ctl = ctl_flags(opts)?;
    let certify = certify_flag(opts);
    let options = AnalysisOptions::new()
        .with_ctl(ctl)
        .with_jobs(jobs)
        .with_certify(certify)
        .with_backend(engine)
        .with_inprocessing(opts.contains_key("inprocess"))
        .with_clause_sharing(opts.contains_key("share-clauses"));
    let golden = load_aig(required(opts, "golden")?)?;
    let approx = load_aig(required(opts, "approx")?)?;
    if golden.num_inputs() != approx.num_inputs() || golden.num_outputs() != approx.num_outputs() {
        return Err("golden and approx interfaces differ".into());
    }
    let sequential = golden.num_latches() > 0 || approx.num_latches() > 0;
    if sequential {
        println!("sequential analysis (horizon {horizon} cycles, {jobs} jobs)");
        let analyzer = SeqAnalyzer::new(&golden, &approx).with_options(options);
        if engine == Backend::Static {
            print_static_metric(
                "worst-case error@k   ",
                analyzer.worst_case_error_at(horizon),
            )?;
            print_static_metric("bit-flip error@k     ", analyzer.bit_flip_error_at(horizon))?;
            return Ok(());
        }
        let earliest = analyzer
            .earliest_error(horizon + 1)
            .map_err(report_analysis_error)?;
        match earliest.cycle {
            Some(c) => println!("earliest error cycle : {c}"),
            None => println!("earliest error cycle : none within horizon"),
        }
        if let (Some(path), Some(trace)) = (opts.get("vcd"), &earliest.trace) {
            let dump =
                axmc::mc::vcd::trace_to_vcd(&approx, trace, &axmc::mc::vcd::VcdNames::default());
            std::fs::write(path, dump).map_err(|e| format!("cannot write '{path}': {e}"))?;
            println!("counterexample trace : written to {path} (VCD)");
        }
        let wce = analyzer
            .worst_case_error_at(horizon)
            .map_err(report_analysis_error)?;
        println!(
            "worst-case error@k   : {} ({} probes, {} conflicts)",
            wce.value, wce.sat_calls, wce.conflicts
        );
        let bf = analyzer
            .bit_flip_error_at(horizon)
            .map_err(report_analysis_error)?;
        println!("bit-flip error@k     : {}", bf.value);
        if opts.contains_key("prove") {
            let verdict = analyzer
                .prove_error_bound(
                    wce.value,
                    &InductionOptions {
                        max_k: 4,
                        simple_path: false,
                        ..InductionOptions::default()
                    },
                )
                .map_err(report_analysis_error)?;
            match verdict {
                Verdict::Proved => {
                    println!(
                        "unbounded bound      : |error| <= {} proved (k-induction)",
                        wce.value
                    )
                }
                Verdict::Refuted { witness } => println!(
                    "unbounded bound      : exceeded in a {}-cycle run (error accumulates)",
                    witness.len()
                ),
                Verdict::Interrupted { best_so_far } => {
                    println!("unbounded bound      : undecided ({best_so_far})")
                }
            }
        }
    } else {
        println!("combinational analysis (engine {engine})");
        let analyzer = CombAnalyzer::new(&golden, &approx).with_options(options);
        if engine == Backend::Static {
            print_static_metric("worst-case error     ", analyzer.worst_case_error())?;
            print_static_metric("bit-flip error       ", analyzer.bit_flip_error())?;
            return Ok(());
        }
        let wce = analyzer.worst_case_error().map_err(report_analysis_error)?;
        println!(
            "worst-case error     : {} ({} probes, {} conflicts, via {})",
            wce.value, wce.sat_calls, wce.conflicts, wce.engine
        );
        println!(
            "worst-case rel error : {:.4} %",
            threshold_to_wcre(wce.value, golden.num_outputs())
        );
        let bf = analyzer.bit_flip_error().map_err(report_analysis_error)?;
        println!("bit-flip error       : {}", bf.value);
        let msb = analyzer
            .most_significant_error_bit()
            .map_err(report_analysis_error)?;
        match msb {
            Some(bit) => println!("MSB error bit        : {bit}"),
            None => println!("MSB error bit        : none (equivalent)"),
        }
        if opts.contains_key("average") {
            // Exact average-case metrics through the unified backend
            // path: BDD model counting first, then an exhaustive sweep,
            // then sampling (flagged as a non-guaranteed estimate).
            let avg = analyzer.average_error().map_err(report_analysis_error)?;
            println!("mean abs error       : {:.6} ({})", avg.mae, avg.method);
            println!(
                "error rate           : {:.4} % ({})",
                avg.error_rate * 100.0,
                avg.method
            );
        }
    }
    if certify {
        report_certificates("certified results    ");
    }
    Ok(())
}

/// Parses `--engine` for characterize, defaulting to the racing `Auto`
/// portfolio — a library sweep is exactly the mixed adder/multiplier
/// workload the portfolio (and its static-tier prescreen) is built for.
fn characterize_engine_flag(opts: &Flags) -> Result<Backend, String> {
    match opts.get("engine") {
        None => Ok(Backend::Auto),
        Some(text) => text.parse(),
    }
}

/// The widths a characterize run sweeps: `--widths` verbatim, or the
/// doubling ladder 4, 8, 16, … up to and including `--width`.
fn characterize_widths(opts: &Flags) -> Result<Vec<usize>, String> {
    if let Some(list) = opts.get("widths") {
        let mut widths = Vec::new();
        for tok in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let w: usize = tok
                .parse()
                .map_err(|_| format!("invalid width '{tok}' in --widths"))?;
            if w == 0 {
                return Err("--widths entries must be >= 1".into());
            }
            widths.push(w);
        }
        if widths.is_empty() {
            return Err("--widths must name at least one width".into());
        }
        return Ok(widths);
    }
    let max: usize = numeric(opts, "width", 8)?;
    if max == 0 {
        return Err("--width must be >= 1".into());
    }
    let mut widths = Vec::new();
    let mut w = 4;
    while w < max {
        widths.push(w);
        w *= 2;
    }
    widths.push(max);
    Ok(widths)
}

fn cmd_characterize(opts: &Flags) -> Result<(), CliError> {
    use axmc::characterize::{self, MemoryCache, MetricSelection, SweepOptions, Table};
    use axmc::core::CacheHandle;

    let engine = characterize_engine_flag(opts)?;
    let jobs = jobs_flag(opts)?;
    let ctl = ctl_flags(opts)?;
    let widths = characterize_widths(opts)?;

    // Which library slices to sweep: builtin adders/multipliers and/or
    // AIGER imports. Passing --library implies the imports slice.
    let (mut adders, mut multipliers, mut imports) = (false, false, false);
    match opts.get("kinds") {
        None => {
            adders = true;
            multipliers = true;
            imports = opts.contains_key("library");
        }
        Some(list) => {
            for tok in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                match tok {
                    "adders" => adders = true,
                    "multipliers" => multipliers = true,
                    "imports" => imports = true,
                    "all" => {
                        adders = true;
                        multipliers = true;
                        imports = true;
                    }
                    other => {
                        return Err(format!(
                            "unknown --kinds entry '{other}' (adders, multipliers, imports, all)"
                        )
                        .into())
                    }
                }
            }
        }
    }
    if imports && !opts.contains_key("library") {
        return Err("--kinds imports needs --library DIR".into());
    }

    let metrics = match opts.get("measure") {
        None => MetricSelection::default(),
        Some(list) => {
            let mut m = MetricSelection {
                wce: false,
                bit_flip: false,
                average: false,
            };
            for tok in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                match tok {
                    "wce" => m.wce = true,
                    "bit-flip" | "bit_flip" => m.bit_flip = true,
                    "avg" | "average" => m.average = true,
                    other => {
                        return Err(format!(
                            "unknown --measure entry '{other}' (wce, bit-flip, avg)"
                        )
                        .into())
                    }
                }
            }
            if !m.wce && !m.bit_flip && !m.average {
                return Err("--measure must name at least one metric".into());
            }
            m
        }
    };

    // Assemble the library.
    let mut components = characterize::builtin_library(&widths, adders, multipliers);
    if imports {
        let dir = required(opts, "library")?;
        let (imported, warnings) = characterize::import_library(Path::new(dir))?;
        for w in warnings {
            eprintln!("warning: {w}");
        }
        components.extend(imported);
    }
    if components.is_empty() {
        return Err("the library is empty (nothing to characterize)".into());
    }

    // Compose mode: instantiate the picks inside a sequential scenario
    // instead of characterizing them in isolation.
    if let Some(name) = opts.get("compose") {
        let scenario = characterize::Scenario::parse(name)?;
        let horizon: usize = numeric(opts, "horizon", 4)?;
        let taps: usize = numeric(opts, "taps", 4)?;
        if scenario == characterize::Scenario::Fir && taps < 2 {
            return Err("--taps must be >= 2 for the FIR scenario".into());
        }
        if widths.len() != 1 {
            return Err("compose mode analyzes one width: pass --width W (or --widths W)".into());
        }
        let width = widths[0];
        let started = Instant::now();
        let base = AnalysisOptions::new().with_ctl(ctl);
        let (rows, skipped) =
            characterize::compose_sweep(scenario, width, horizon, taps, &components, &base, jobs)?;
        for s in skipped {
            eprintln!("warning: {s}");
        }
        if rows.is_empty() {
            return Err(format!(
                "no {}-bit {} components in the library to compose",
                width,
                scenario.slot_kind().as_str()
            )
            .into());
        }
        let selected = match opts.get("tau") {
            None => None,
            Some(text) => {
                let tau: u128 = text
                    .parse()
                    .map_err(|_| format!("invalid --tau '{text}' (decimal integer)"))?;
                let pick = characterize::select(&rows, tau);
                if pick.is_none() {
                    eprintln!(
                        "warning: no component keeps the system-level WCE within tau = {tau}"
                    );
                }
                pick
            }
        };
        println!(
            "composed {} components into the {} scenario (width {width}, horizon {horizon})",
            rows.len(),
            scenario.as_str()
        );
        print!("{}", characterize::compose_markdown(&rows, selected));
        if let Some(i) = selected {
            println!(
                "selected: {} ({:.1} um2, system WCE {} <= tau)",
                rows[i].component,
                rows[i].area_um2,
                rows[i].sys_wce.expect("selected rows are determined"),
            );
        }
        if let Some(path) = opts.get("out") {
            // Compose rows append to the table file: component rows
            // already there stay valid (the parser keys on 'record').
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open '{path}': {e}"))?;
            for row in &rows {
                writeln!(file, "{}", row.to_json().render())
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
            }
            println!("appended {} composition rows to {path}", rows.len());
        }
        println!(
            "done in {:.1} ms ({jobs} jobs)",
            started.elapsed().as_secs_f64() * 1e3
        );
        return Ok(());
    }

    // Warm reuse: completed rows of an existing --out table answer
    // matching components without recomputation.
    let reuse = match opts.get("out") {
        Some(path) if !opts.contains_key("no-reuse") && Path::new(path).exists() => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            Table::from_jsonl(&text)
                .map_err(|e| format!("existing table '{path}' is invalid: {e}"))?
                .entries
        }
        _ => Vec::new(),
    };

    let cache = Arc::new(MemoryCache::new());
    let base = AnalysisOptions::new()
        .with_ctl(ctl)
        .with_backend(engine)
        .with_cache(CacheHandle::new(cache.clone()));
    let sweep = SweepOptions {
        base,
        jobs,
        metrics,
        reuse,
    };
    let started = Instant::now();
    let table = characterize::characterize(&components, &sweep)?;
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    print!("{}", table.to_markdown());
    if let Some(path) = opts.get("out") {
        std::fs::write(path, table.to_jsonl())
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("wrote {path} ({} JSONL rows)", table.entries.len());
    }
    if let Some(path) = opts.get("markdown") {
        std::fs::write(path, table.to_markdown())
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("wrote {path} (markdown)");
    }
    let reused = table.entries.iter().filter(|e| e.reused).count();
    let interrupted = table
        .entries
        .iter()
        .filter(|e| e.status == "interrupted")
        .count();
    println!(
        "characterized {} components ({} reused, {} computed, {} interrupted) \
         in {elapsed_ms:.1} ms ({jobs} jobs, engine {engine}); \
         query cache: {} hits, {} stored",
        table.entries.len(),
        reused,
        table.entries.len() - reused,
        interrupted,
        cache.hits(),
        cache.len(),
    );
    Ok(())
}

fn cmd_evolve(opts: &Flags) -> Result<(), CliError> {
    let kind = required(opts, "kind")?;
    let width: usize = numeric(opts, "width", 8)?;
    let seed: u64 = numeric(opts, "seed", 1)?;
    let engine = engine_flag(opts)?;
    let jobs = jobs_flag(opts)?;
    let ctl = ctl_flags(opts)?;
    let certify = certify_flag(opts);
    let golden: Netlist = match kind {
        "adder" => generators::ripple_carry_adder(width),
        "multiplier" => generators::array_multiplier(width),
        other => return Err(format!("unknown --kind '{other}' (adder|multiplier)").into()),
    };
    // Either a classic CGP configuration file or --wcre/--seconds flags.
    let (options, wcre) = if let Some(path) = opts.get("config") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let cfg = axmc::cgp::parse_config(&text).map_err(|e| e.to_string())?;
        if !cfg.ignored_keys.is_empty() {
            eprintln!("note: ignored config keys: {}", cfg.ignored_keys.join(", "));
        }
        let mut options = cfg.options;
        options.threshold = wcre_to_threshold(cfg.wcre_percent, golden.num_outputs()).max(1);
        options.seed = seed;
        options.extra_cols = 4;
        options.jobs = jobs;
        options.certify = certify;
        options.ctl = ctl;
        options.backend = engine;
        (options, cfg.wcre_percent)
    } else {
        let wcre: f64 = numeric(opts, "wcre", 1.0)?;
        let seconds: u64 = numeric(opts, "seconds", 20)?;
        let options = SearchOptions {
            threshold: wcre_to_threshold(wcre, golden.num_outputs()).max(1),
            max_generations: u64::MAX,
            time_limit: Duration::from_secs(seconds),
            seed,
            extra_cols: 4,
            jobs,
            certify,
            ctl,
            backend: engine,
            ..SearchOptions::default()
        };
        (options, wcre)
    };
    println!(
        "evolving {kind} (width {width}) under WCRE <= {wcre}% (threshold {}), {:?}, {jobs} jobs",
        options.threshold, options.time_limit
    );
    let result = evolve(&golden, &options)?;
    if let Some(reason) = result.stats.interrupt {
        println!("note: search interrupted ({reason}); reporting the best verified circuit found");
    }
    println!(
        "area: {:.1} -> {:.1} um2 ({:.1} % of exact), {} improvements, {} UNSAT certificates",
        result.golden_area,
        result.area,
        result.relative_area() * 100.0,
        result.stats.improvements,
        result.stats.verified_ok
    );
    if certify {
        report_certificates("certified acceptances");
    }
    if let Some(path) = opts.get("out") {
        save_aig(path, &result.netlist.to_aig())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_gen(opts: &Flags) -> Result<(), CliError> {
    let kind = required(opts, "kind")?;
    let width: usize = numeric(opts, "width", 8)?;
    let param: usize = numeric(opts, "param", width / 2)?;
    // Sequential templates produce an AIG directly (latches have no
    // netlist form); --verilog is combinational-only.
    let sequential = match kind {
        "accumulator" => Some(axmc::seq::accumulator(
            &generators::ripple_carry_adder(width),
            width,
        )),
        "trunc-accumulator" => Some(axmc::seq::accumulator(
            &approx::truncated_adder(width, param),
            width,
        )),
        _ => None,
    };
    if let Some(aig) = sequential {
        if opts.contains_key("verilog") {
            return Err(format!("--verilog is not supported for sequential kind '{kind}'").into());
        }
        let path = required(opts, "out")?;
        save_aig(path, &aig)?;
        println!(
            "wrote {path}: {} inputs, {} outputs, {} latches, {} ands",
            aig.num_inputs(),
            aig.num_outputs(),
            aig.num_latches(),
            aig.num_ands()
        );
        return Ok(());
    }
    let netlist = match kind {
        "adder" => generators::ripple_carry_adder(width),
        "multiplier" => generators::array_multiplier(width),
        "incrementer" => generators::incrementer(width),
        "trunc-adder" => approx::truncated_adder(width, param),
        "loa-adder" => approx::lower_or_adder(width, param),
        "spec-adder" => approx::speculative_adder(width, param.max(1)),
        "trunc-multiplier" => approx::truncated_multiplier(width, param),
        "optrunc-multiplier" => approx::operand_truncated_multiplier(width, param),
        "kulkarni-multiplier" => approx::kulkarni_multiplier(width),
        other => return Err(format!("unknown --kind '{other}'").into()),
    };
    let path = required(opts, "out")?;
    save_aig(path, &netlist.to_aig())?;
    if let Some(vpath) = opts.get("verilog") {
        let module = vpath
            .rsplit('/')
            .next()
            .and_then(|f| f.split('.').next())
            .filter(|s| !s.is_empty())
            .unwrap_or("axmc_gen");
        let text = axmc::circuit::verilog::to_verilog(&netlist, module);
        std::fs::write(vpath, text).map_err(|e| format!("cannot write '{vpath}': {e}"))?;
        println!("wrote {vpath} (structural Verilog)");
    }
    println!(
        "wrote {path}: {} inputs, {} outputs, {} gates ({:.1} um2)",
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_active_gates(),
        netlist.area(&AreaModel::nm45())
    );
    Ok(())
}

fn cmd_stats(opts: &Flags) -> Result<(), CliError> {
    let aig = load_aig(required(opts, "circuit")?)?;
    println!("inputs  : {}", aig.num_inputs());
    println!("outputs : {}", aig.num_outputs());
    println!("latches : {}", aig.num_latches());
    println!("ands    : {}", aig.num_ands());
    println!("depth   : {}", aig.depth());
    Ok(())
}

fn cmd_lint(opts: &Flags) -> Result<(), CliError> {
    use axmc::check::{lint_aig, lint_netlist, lint_pair, lint_semantics, Diagnostic, Severity};
    if !opts.contains_key("circuit") && !opts.contains_key("suite") {
        return Err("pass --circuit C.aag, --suite, or both".into());
    }
    let mut targets = 0usize;
    let mut warnings = 0usize;
    let mut errors = 0usize;
    let mut report = |subject: &str, diags: Vec<Diagnostic>| {
        targets += 1;
        for d in &diags {
            println!("{subject}: {d}");
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
        }
    };
    if let Some(path) = opts.get("circuit") {
        let aig = load_aig(path)?;
        report(path, lint_aig(&aig));
        report(path, lint_semantics(&aig));
    }
    if opts.contains_key("suite") {
        for pair in axmc::seq::suite::standard_suite(8) {
            report(&format!("{} (golden)", pair.name), lint_aig(&pair.golden));
            report(&format!("{} (approx)", pair.name), lint_aig(&pair.approx));
            report(
                &format!("{} (golden)", pair.name),
                lint_semantics(&pair.golden),
            );
            report(
                &format!("{} (approx)", pair.name),
                lint_semantics(&pair.approx),
            );
            report(&pair.name, lint_pair(&pair.golden, &pair.approx));
        }
        for width in [4, 8, 16] {
            for component in axmc::circuit::approx::adder_library(width) {
                report(&component.name, lint_netlist(&component.netlist));
            }
        }
        for width in [4, 8] {
            for component in axmc::circuit::approx::multiplier_library(width) {
                report(&component.name, lint_netlist(&component.netlist));
            }
        }
    }
    println!("linted {targets} structures: {errors} errors, {warnings} warnings");
    if errors > 0 {
        return Err(format!("lint found {errors} error-severity diagnostics").into());
    }
    Ok(())
}

fn cmd_report(opts: &Flags) -> Result<(), CliError> {
    use axmc::obs::{profile::Profile, report};
    let path = match (opts.get("run-dir"), opts.get("trace")) {
        (Some(dir), None) => Path::new(dir).join(artifact::TRACE_FILE),
        (None, Some(file)) => PathBuf::from(file),
        _ => return Err("pass exactly one of --run-dir DIR or --trace F.jsonl".into()),
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    let profile = Profile::from_jsonl(&text);
    if profile.is_empty() {
        println!("no span events in {}", path.display());
        return Ok(());
    }
    print!("{}", report::render_tree(&profile));
    println!();
    print!("{}", report::render_quantiles(&profile));
    if profile.skipped > 0 {
        println!(
            "note: {} malformed or orphaned trace lines skipped",
            profile.skipped
        );
    }
    if let Some(flame) = opts.get("flame") {
        std::fs::write(flame, report::collapsed_stacks(&profile))
            .map_err(|e| format!("cannot write '{flame}': {e}"))?;
        println!("wrote {flame} (collapsed stacks; render with any flamegraph tool)");
    }
    Ok(())
}

fn cmd_bench_diff(opts: &Flags) -> Result<(), CliError> {
    use axmc::obs::diff;
    let threshold: f64 = numeric(opts, "threshold", 25.0)?;
    let min_ms: f64 = numeric(opts, "min-ms", 5.0)?;
    if !threshold.is_finite() || threshold < 0.0 {
        return Err("--threshold must be a percentage >= 0".into());
    }
    if !min_ms.is_finite() || min_ms < 0.0 {
        return Err("--min-ms must be >= 0".into());
    }
    let load = |flag: &str| -> Result<Vec<(String, f64)>, CliError> {
        let path = artifact::resolve_metrics_path(Path::new(required(opts, flag)?));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
        let doc =
            Json::parse(&text).map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
        let rows = diff::extract_rows(&doc);
        if rows.is_empty() {
            return Err(format!(
                "'{}' contains no timing rows (expected a bench phase log or run-dir metrics.json)",
                path.display()
            )
            .into());
        }
        Ok(rows)
    };
    let base = load("base")?;
    let new = load("new")?;
    let options = diff::DiffOptions {
        threshold_pct: threshold,
        min_ms,
    };
    let result = diff::compare(&base, &new, options);
    print!("{}", diff::render(&result, options));
    if result.compared() == 0 {
        return Err(format!(
            "base and new share no timing rows ({} vs {} rows) — nothing was compared",
            base.len(),
            new.len()
        )
        .into());
    }
    if result.regressed {
        return Err(CliError {
            code: 12,
            message: format!("performance regression beyond +{threshold}%"),
        });
    }
    Ok(())
}

fn cmd_serve(opts: &Flags) -> Result<(), CliError> {
    let jobs = jobs_flag(opts)?;
    let engine = engine_flag(opts)?;
    let certify = certify_flag(opts);
    // For serve, --timeout is the *default per-job* deadline (each job
    // gets a fresh envelope at pickup), not a whole-command deadline —
    // a server has no natural end of command.
    let default_timeout = match opts.get("timeout") {
        Some(text) => Some(parse_duration(text)?),
        None => None,
    };
    let server = axmc::serve::Server::new(axmc::serve::ServeConfig {
        jobs,
        certify,
        backend: engine,
        default_timeout,
        inprocess: opts.contains_key("inprocess"),
    });
    if let Some(path) = opts.get("socket") {
        let max_conns = match opts.get("max-conns") {
            None => None,
            Some(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| format!("invalid --max-conns '{v}'"))?,
            ),
        };
        eprintln!("serving on {path} ({jobs} workers)");
        server
            .run_unix(Path::new(path), max_conns)
            .map_err(|e| format!("serve: {e}"))?;
    } else {
        server
            .run_batch(std::io::stdin().lock(), std::io::stdout())
            .map_err(|e| format!("serve: {e}"))?;
    }
    Ok(())
}
