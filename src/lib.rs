//! # axmc — precise error determination of approximated components in
//! sequential circuits with model checking
//!
//! `axmc` is a self-contained Rust toolkit that determines, with formal
//! guarantees, the error introduced by replacing a combinational component
//! (adder, multiplier, incrementer, …) with an approximate variant —
//! including when the component is embedded in a **sequential** circuit,
//! where errors can be masked, delayed, or amplified through feedback.
//! On top of the analysis engines it provides a verifiability-driven CGP
//! synthesis loop that *generates* approximate circuits carrying formal
//! worst-case-error certificates.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`aig`] | `axmc-aig` | And-Inverter Graphs, word-level helpers, 64-way simulation, AIGER I/O |
//! | [`absint`] | `axmc-absint` | Static pre-analysis: ternary abstract interpretation, interval bounds, structural sweeping |
//! | [`sat`] | `axmc-sat` | CDCL SAT solver with assumptions and resource budgets |
//! | [`cnf`] | `axmc-cnf` | CNF formulas, DIMACS, Tseitin encoding |
//! | [`circuit`] | `axmc-circuit` | Gate-level netlists, exact generators, approximate component library |
//! | [`miter`] | `axmc-miter` | Combinational and sequential error miters |
//! | [`seq`] | `axmc-seq` | Sequential design templates and the benchmark suite |
//! | [`mc`] | `axmc-mc` | Bounded model checking, k-induction, explicit reachability |
//! | [`core`] | `axmc-core` | The error-determination engines ([`CombAnalyzer`], [`SeqAnalyzer`]) |
//! | [`cgp`] | `axmc-cgp` | Verifiability-driven CGP synthesis |
//! | [`characterize`] | `axmc-characterize` | Library characterization tables and composed accelerator scenarios |
//! | [`check`] | `axmc-check` | RUP/DRAT proof checking for certified UNSAT results, structural linting |
//! | [`serve`] | `axmc-serve` | Batch analysis service: JSONL protocol, priority queue, structural-hash result cache |
//! | [`obs`] | `axmc-obs` | Metrics, spans and trace events behind the CLI's `--metrics`/`--trace` |
//! | [`par`] | `axmc-par` | Zero-dependency worker pools behind `--jobs` (deterministic parallel oracles) |
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use axmc::circuit::{generators, approx};
//! use axmc::{CombAnalyzer, SeqAnalyzer};
//! use axmc::seq::accumulator;
//!
//! // 1. How wrong is a lower-OR adder, at worst? (exact, via SAT)
//! let golden = generators::ripple_carry_adder(8).to_aig();
//! let cheap = approx::lower_or_adder(8, 4).to_aig();
//! let wce = CombAnalyzer::new(&golden, &cheap).worst_case_error()?;
//! println!("combinational WCE = {}", wce.value);
//!
//! // 2. And once it sits inside an accumulator? (exact, via BMC)
//! let g = accumulator(&generators::ripple_carry_adder(8), 8);
//! let c = accumulator(&approx::lower_or_adder(8, 4), 8);
//! let wce8 = SeqAnalyzer::new(&g, &c).worst_case_error_at(8)?;
//! println!("sequential WCE within 8 cycles = {}", wce8.value);
//! # Ok::<(), axmc::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use axmc_absint as absint;
pub use axmc_aig as aig;
pub use axmc_bdd as bdd;
pub use axmc_cgp as cgp;
pub use axmc_characterize as characterize;
pub use axmc_check as check;
pub use axmc_circuit as circuit;
pub use axmc_cnf as cnf;
pub use axmc_core as core;
pub use axmc_mc as mc;
pub use axmc_miter as miter;
pub use axmc_obs as obs;
pub use axmc_par as par;
pub use axmc_sat as sat;
pub use axmc_seq as seq;
pub use axmc_serve as serve;

pub use axmc_cgp::{evolve, SearchOptions, SearchResult};
pub use axmc_core::{
    AnalysisError, AnalysisOptions, AverageMethod, AverageReport, Backend, Budget, CancelToken,
    CombAnalyzer, EngineKind, ErrorGrowth, ErrorProfile, ErrorReport, Interrupt, Partial,
    ResourceCtl, SeqAnalyzer, Verdict, DEFAULT_BDD_NODE_LIMIT,
};
pub use axmc_mc::{Bmc, BmcResult, CertificateRejected, InductionOptions, ProofResult};
