//! Three-way cross-validation of the analysis backends.
//!
//! For every width-≤8 component in the approximate suite, the SAT/CEGIS
//! engine, the BDD engine, and an exhaustive simulation sweep must agree
//! **bit for bit** on every metric — under every backend selection,
//! serial and with a two-worker portfolio, and under an expiring
//! deadline (where the portfolio must return a typed interrupt, never a
//! torn result).

use axmc::circuit::approx::{adder_library, multiplier_library, Component};
use axmc::core::{exhaustive_stats, AverageMethod, CombAnalyzer};
use axmc::{AnalysisError, AnalysisOptions, Backend, Interrupt};
use std::time::Duration;

/// Every suite component at widths the exhaustive sweep can referee.
fn suite() -> Vec<(String, axmc::aig::Aig, axmc::aig::Aig)> {
    let mut pairs = Vec::new();
    for (lib, golden_of) in [
        (adder_library(4), 0usize),
        (adder_library(8), 0),
        (multiplier_library(4), 0),
    ] {
        let golden = lib[golden_of].netlist.to_aig();
        for Component { name, netlist } in &lib[1..] {
            pairs.push((name.clone(), golden.clone(), netlist.to_aig()));
        }
    }
    pairs
}

#[test]
fn every_backend_agrees_with_the_exhaustive_sweep() {
    for (name, golden, candidate) in suite() {
        let sweep = exhaustive_stats(&golden, &candidate);
        for (backend, jobs) in [
            (Backend::Sat, 1usize),
            (Backend::Bdd, 1),
            (Backend::Auto, 1),
            (Backend::Auto, 2),
        ] {
            let analyzer = CombAnalyzer::new(&golden, &candidate)
                .with_options(AnalysisOptions::new().with_backend(backend).with_jobs(jobs));
            let wce = analyzer.worst_case_error().unwrap();
            assert_eq!(wce.value, sweep.wce, "{name} wce {backend} jobs={jobs}");
            let flips = analyzer.bit_flip_error().unwrap();
            assert_eq!(
                flips.value, sweep.bit_flip,
                "{name} bit-flip {backend} jobs={jobs}"
            );
        }
    }
}

#[test]
fn average_metrics_are_bit_identical_across_methods() {
    for (name, golden, candidate) in suite() {
        let sweep = exhaustive_stats(&golden, &candidate);
        for backend in [Backend::Sat, Backend::Bdd, Backend::Auto] {
            let avg = CombAnalyzer::new(&golden, &candidate)
                .with_options(AnalysisOptions::new().with_backend(backend))
                .average_error()
                .unwrap();
            assert!(avg.exact, "{name} {backend}");
            assert_eq!(avg.method, AverageMethod::Bdd, "{name} {backend}");
            // Both methods compute total / 2^n in one division, so the
            // floats are identical, not merely close.
            assert_eq!(avg.total_error, Some(sweep.total_error), "{name}");
            assert_eq!(avg.mae, sweep.mae, "{name} {backend}");
            assert_eq!(avg.error_rate, sweep.error_rate, "{name} {backend}");
        }
    }
}

#[test]
fn expiring_deadline_yields_a_typed_interrupt_never_a_torn_result() {
    // A width-8 multiplier pair is slow enough that a zero deadline
    // always fires first, on every backend and portfolio width.
    let lib = multiplier_library(8);
    let golden = lib[0].netlist.to_aig();
    let candidate = lib[1].netlist.to_aig();
    for (backend, jobs) in [
        (Backend::Sat, 1usize),
        (Backend::Bdd, 1),
        (Backend::Auto, 1),
        (Backend::Auto, 2),
    ] {
        let analyzer = CombAnalyzer::new(&golden, &candidate).with_options(
            AnalysisOptions::new()
                .with_backend(backend)
                .with_jobs(jobs)
                .with_timeout(Duration::ZERO),
        );
        match analyzer.worst_case_error() {
            Err(AnalysisError::Interrupted(p)) => {
                assert_eq!(p.reason, Some(Interrupt::Deadline), "{backend} jobs={jobs}");
                assert!(p.known_low <= p.known_high, "{backend} jobs={jobs}");
            }
            other => panic!("{backend} jobs={jobs}: expected interrupt, got {other:?}"),
        }
    }
}

#[test]
fn the_portfolio_survivor_wins_under_a_partial_deadline() {
    // Give the run enough time for the (fast) BDD side of the portfolio
    // but not for an unbounded SAT search: the portfolio must still
    // return the exact answer, produced by whichever engine survived.
    let lib = adder_library(8);
    let golden = lib[0].netlist.to_aig();
    let candidate = lib[1].netlist.to_aig();
    let sweep = exhaustive_stats(&golden, &candidate);
    for jobs in [1usize, 2] {
        let analyzer = CombAnalyzer::new(&golden, &candidate).with_options(
            AnalysisOptions::new()
                .with_backend(Backend::Auto)
                .with_jobs(jobs)
                .with_timeout(Duration::from_secs(60)),
        );
        let wce = analyzer.worst_case_error().unwrap();
        assert_eq!(wce.value, sweep.wce, "jobs={jobs}");
    }
}
