//! End-to-end certification tests: every UNSAT verdict the analysis
//! engines report under `--certify` must carry a DRAT certificate the
//! in-tree RUP/DRAT checker accepts — and the checker must *reject*
//! deliberately corrupted proofs, or the whole exercise is vacuous.

use axmc::check::{check_certificate, ProofError};
use axmc::circuit::{approx, generators};
use axmc::core::{AnalysisOptions, SeqAnalyzer};
use axmc::sat::{Certificate, Lit, ProofStep, ShareRing, SolveResult, Solver, SolverConfig, Var};
use axmc::seq::accumulator;

/// A pigeonhole instance (n pigeons, n-1 holes): small, UNSAT, and with a
/// proof whose steps genuinely depend on one another.
fn pigeonhole(solver: &mut Solver, pigeons: usize) -> Vec<Vec<Lit>> {
    let holes = pigeons - 1;
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    for _ in 0..pigeons * holes {
        solver.new_var();
    }
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h).positive()).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    for c in &clauses {
        solver.add_clause(c);
    }
    clauses
}

/// Records a real refutation of a pigeonhole instance and returns the
/// solver (still holding the certificate).
fn refuted_solver() -> Solver {
    let mut solver = Solver::with_config(SolverConfig::new().with_proof_logging(true));
    pigeonhole(&mut solver, 4);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    solver
}

#[test]
fn recorded_refutation_is_accepted() {
    let solver = refuted_solver();
    let cert = solver.certificate().expect("UNSAT leaves a certificate");
    let stats = check_certificate(&cert).expect("genuine proof must check");
    assert!(stats.additions > 0, "pigeonhole needs learned clauses");
}

#[test]
fn dropped_proof_clause_is_rejected() {
    let solver = refuted_solver();
    let cert = solver.certificate().expect("certificate");
    // Drop the first learned clause: later steps (and ultimately the
    // empty conclusion) lean on it, so forward checking must fail.
    let mutated: Vec<ProofStep> = cert
        .steps
        .iter()
        .enumerate()
        .filter(|&(k, step)| {
            !(k == first_add_index(cert.steps) && matches!(step, ProofStep::Add(_)))
        })
        .map(|(_, step)| step.clone())
        .collect();
    let corrupted = Certificate {
        steps: &mutated,
        ..cert
    };
    let err = check_certificate(&corrupted).expect_err("dropped clause must be caught");
    assert!(
        matches!(
            err,
            ProofError::NotRup { .. } | ProofError::ConclusionNotRup
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn permuted_pivot_is_rejected() {
    let solver = refuted_solver();
    let cert = solver.certificate().expect("certificate");
    // Flip the polarity of one literal in the first learned clause: the
    // mutated clause is no longer implied by unit propagation.
    let k = first_add_index(cert.steps);
    let mut mutated: Vec<ProofStep> = cert.steps.to_vec();
    if let ProofStep::Add(lits) = &mut mutated[k] {
        lits[0] = !lits[0];
    }
    let corrupted = Certificate {
        steps: &mutated,
        ..cert
    };
    let err = check_certificate(&corrupted).expect_err("permuted pivot must be caught");
    assert!(
        matches!(
            err,
            ProofError::NotRup { .. } | ProofError::ConclusionNotRup
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn proof_stripped_to_premises_is_rejected() {
    let solver = refuted_solver();
    let cert = solver.certificate().expect("certificate");
    let empty: Vec<ProofStep> = Vec::new();
    let corrupted = Certificate {
        steps: &empty,
        ..cert
    };
    let err = check_certificate(&corrupted).expect_err("premises alone prove nothing here");
    assert!(
        matches!(err, ProofError::ConclusionNotRup),
        "unexpected error: {err}"
    );
}

/// Index of the first clause-addition step in a proof.
fn first_add_index(steps: &[ProofStep]) -> usize {
    steps
        .iter()
        .position(|s| matches!(s, ProofStep::Add(_)))
        .expect("refutation contains at least one learned clause")
}

#[test]
fn certified_sequential_analysis_suite() {
    // A miniature tier-1 sweep: sequential accumulator designs over two
    // approximate adders, analyzed with certification on. Every UNSAT the
    // engines see is re-derived by the checker (a rejected certificate
    // panics inside the engine), and results must match the uncertified
    // run bit for bit.
    axmc::obs::set_enabled(true);
    axmc::obs::reset();
    let golden_comp = generators::ripple_carry_adder(4);
    for approx_comp in [approx::truncated_adder(4, 2), approx::lower_or_adder(4, 2)] {
        let golden = accumulator(&golden_comp, 4);
        let approximate = accumulator(&approx_comp, 4);

        let plain = SeqAnalyzer::new(&golden, &approximate);
        let certified = SeqAnalyzer::new(&golden, &approximate)
            .with_options(AnalysisOptions::new().with_certify(true));

        let e1 = plain.earliest_error(4).expect("analysis");
        let e2 = certified.earliest_error(4).expect("certified analysis");
        assert_eq!(e1.cycle, e2.cycle);

        let w1 = plain.worst_case_error_at(3).expect("analysis");
        let w2 = certified
            .worst_case_error_at(3)
            .expect("certified analysis");
        assert_eq!(w1.value, w2.value);
    }
    let checked = axmc::obs::snapshot()
        .counters
        .get("check.certified")
        .copied()
        .unwrap_or(0);
    assert!(
        checked > 0,
        "the certified sweep must actually exercise the checker"
    );
}

#[test]
fn certified_analysis_with_inprocessing_and_sharing() {
    // The full speed stack — portfolio probing, learned-clause sharing
    // between the lanes, and between-solves inprocessing — under
    // certification: the checker must accept every UNSAT the tuned
    // engines report (a rejection would surface as an error), and the
    // metric values must match the plain serial run bit for bit.
    let golden = accumulator(&generators::ripple_carry_adder(4), 4);
    let approximate = accumulator(&approx::lower_or_adder(4, 2), 4);
    let plain = SeqAnalyzer::new(&golden, &approximate);
    let tuned = SeqAnalyzer::new(&golden, &approximate).with_options(
        AnalysisOptions::new()
            .with_certify(true)
            .with_jobs(3)
            .with_inprocessing(true)
            .with_clause_sharing(true),
    );
    assert_eq!(
        plain.worst_case_error_at(3).expect("analysis").value,
        tuned
            .worst_case_error_at(3)
            .expect("tuned certified analysis")
            .value
    );
    assert_eq!(
        plain.earliest_error(4).expect("analysis").cycle,
        tuned
            .earliest_error(4)
            .expect("tuned certified analysis")
            .cycle
    );
}

#[test]
fn mutated_shared_clauses_cannot_certify() {
    // Import side: a corrupted fleet-mate publishes a clause that does
    // not follow from the importer's database. RUP validation at import
    // must reject it, leaving the verdict (and the model) untouched.
    let ring = ShareRing::new();
    let mut s = Solver::with_config(
        SolverConfig::new()
            .with_proof_logging(true)
            .with_share(ring.handle(0, 8)),
    );
    let x1 = s.new_var().positive();
    let x2 = s.new_var().positive();
    s.add_clause(&[x1, x2]);
    s.add_clause(&[!x1, x2]);
    ring.publish(1, &[!x2]); // the database implies x2: not RUP
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(
        s.model_lit(x2),
        Some(true),
        "the mutated import must not constrain the solver"
    );

    // Checker side: even a mutated clause spliced straight into a
    // recorded refutation is caught by the forward DRAT check — the
    // spliced step is not derivable from the premises before it.
    let solver = refuted_solver();
    let cert = solver.certificate().expect("certificate");
    let mut spliced = cert.steps.to_vec();
    spliced.insert(0, ProofStep::Add(vec![Var::new(0).positive()]));
    let corrupted = Certificate {
        steps: &spliced,
        ..cert
    };
    let err = check_certificate(&corrupted).expect_err("spliced clause must be caught");
    assert!(
        matches!(err, ProofError::NotRup { step: 0 }),
        "unexpected error: {err}"
    );
}
