//! End-to-end checks of the characterization sweep: the JSONL table
//! round-trips losslessly, every width-≤8 entry matches a direct
//! `CombAnalyzer` run bit for bit under the same options, and the
//! `--jobs` fan-out never changes a single metric.

use axmc::characterize::{builtin_library, characterize, MemoryCache, SweepOptions, Table};
use axmc::core::{CacheHandle, CombAnalyzer};
use axmc::{AnalysisOptions, Backend};
use std::sync::Arc;

fn base_options() -> AnalysisOptions {
    AnalysisOptions::default().with_backend(Backend::Auto)
}

#[test]
fn jsonl_round_trips_every_entry() {
    let library = builtin_library(&[4], true, true);
    let table = characterize(&library, &SweepOptions::new(base_options(), 2)).expect("sweep");
    assert_eq!(table.entries.len(), library.len());

    let jsonl = table.to_jsonl();
    let parsed = Table::from_jsonl(&jsonl).expect("parse back");
    assert_eq!(parsed.entries.len(), table.entries.len());
    for (a, b) in table.entries.iter().zip(&parsed.entries) {
        // time_ms survives the round trip too, so compare raw entries.
        assert_eq!(a, b, "entry {} changed across serialize/parse", a.name);
    }
}

#[test]
fn entries_match_direct_analyzer_runs_bit_for_bit() {
    let library = builtin_library(&[4, 8], true, true);
    let options = SweepOptions::new(base_options(), 4);
    let table = characterize(&library, &options).expect("sweep");

    for (component, entry) in library.iter().zip(&table.entries) {
        assert_eq!(entry.name, component.name);
        assert_eq!(
            entry.status, "ok",
            "width ≤ 8 must complete: {}",
            entry.name
        );

        // Re-ask the analyzer directly, with the same options the sweep
        // pins per entry (serial, Auto backend).
        let analyzer = CombAnalyzer::new(&component.golden, &component.candidate)
            .with_options(base_options().with_jobs(1));
        let wce = analyzer.worst_case_error().expect("wce");
        let bit_flip = analyzer.bit_flip_error().expect("bit-flip");
        let avg = analyzer.average_error().expect("average");

        assert_eq!(
            entry.wce,
            Some(wce.value),
            "wce mismatch for {}",
            entry.name
        );
        assert_eq!(
            entry.bit_flip,
            Some(bit_flip.value),
            "bit-flip mismatch for {}",
            entry.name
        );
        assert_eq!(entry.mae, Some(avg.mae), "mae mismatch for {}", entry.name);
        assert_eq!(
            entry.error_rate,
            Some(avg.error_rate),
            "error-rate mismatch for {}",
            entry.name
        );
        assert_eq!(
            entry.engine.as_deref(),
            Some(wce.engine.to_string().as_str())
        );
    }
}

#[test]
fn jobs_fanout_is_invariant() {
    let library = builtin_library(&[4], true, true);
    let serial = characterize(&library, &SweepOptions::new(base_options(), 1)).expect("jobs 1");
    let fanned = characterize(&library, &SweepOptions::new(base_options(), 4)).expect("jobs 4");
    assert_eq!(serial.entries.len(), fanned.entries.len());
    for (a, b) in serial.entries.iter().zip(&fanned.entries) {
        // Wall-clock differs between runs; every metric must not.
        assert_eq!(
            a.canonicalized(),
            b.canonicalized(),
            "--jobs changed the result for {}",
            a.name
        );
    }
}

#[test]
fn warm_reuse_skips_the_solver_and_shares_the_query_cache() {
    let library = builtin_library(&[4], true, false);
    let cache = Arc::new(MemoryCache::new());
    let mut options = SweepOptions::new(
        base_options().with_cache(CacheHandle::new(cache.clone())),
        2,
    );
    let cold = characterize(&library, &options).expect("cold sweep");
    assert!(cold.entries.iter().all(|e| !e.reused));
    let stored = cache.len();
    assert!(stored > 0, "completed verdicts reach the query cache");

    // Feed the cold table back as the reuse corpus: every row must be
    // reused verbatim (modulo timing) without growing the cache.
    options.reuse = cold.entries.clone();
    let warm = characterize(&library, &options).expect("warm sweep");
    assert!(warm.entries.iter().all(|e| e.reused && e.time_ms == 0.0));
    assert_eq!(cache.len(), stored, "reuse must not re-run any query");
    for (a, b) in cold.entries.iter().zip(&warm.entries) {
        assert_eq!(a.canonicalized(), b.canonicalized());
    }
}
