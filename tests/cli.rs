//! End-to-end tests of the `axmc` command-line tool: generate circuits,
//! analyze them, evolve with a certificate, and read the outputs back.

use std::path::PathBuf;
use std::process::Command;

fn axmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_axmc"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("axmc-cli-test-{}-{name}", std::process::id()));
    dir
}

#[test]
fn gen_analyze_round_trip() {
    let g = tmp("g.aag");
    let c = tmp("c.aag");
    let s1 = axmc()
        .args(["gen", "--kind", "adder", "--width", "5", "--out"])
        .arg(&g)
        .output()
        .expect("spawn");
    assert!(
        s1.status.success(),
        "{}",
        String::from_utf8_lossy(&s1.stderr)
    );
    let s2 = axmc()
        .args([
            "gen",
            "--kind",
            "trunc-adder",
            "--width",
            "5",
            "--param",
            "2",
            "--out",
        ])
        .arg(&c)
        .output()
        .expect("spawn");
    assert!(s2.status.success());

    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Truncated adder cut 2: WCE = 2^3 - 2 = 6.
    assert!(text.contains("worst-case error     : 6"), "{text}");
    assert!(text.contains("combinational analysis"), "{text}");
}

#[test]
fn stats_reports_structure() {
    let g = tmp("s.aag");
    axmc()
        .args(["gen", "--kind", "multiplier", "--width", "3", "--out"])
        .arg(&g)
        .output()
        .expect("spawn");
    let out = axmc()
        .args(["stats", "--circuit"])
        .arg(&g)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("inputs  : 6"), "{text}");
    assert!(text.contains("outputs : 6"), "{text}");
    assert!(text.contains("latches : 0"), "{text}");
}

#[test]
fn evolve_produces_certified_circuit() {
    let out_path = tmp("e.aag");
    let out = axmc()
        .args([
            "evolve",
            "--kind",
            "adder",
            "--width",
            "4",
            "--wcre",
            "10",
            "--seconds",
            "2",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Load the result and check the certificate independently.
    let text = std::fs::read_to_string(&out_path).expect("evolved file");
    let evolved = axmc::aig::aiger::from_ascii(&text).expect("valid aiger");
    let golden = axmc::circuit::generators::ripple_carry_adder(4).to_aig();
    let report = axmc::CombAnalyzer::new(&golden, &evolved)
        .worst_case_error()
        .expect("analysis");
    // WCRE 10% of 2^5 = 3.2 -> threshold 3.
    assert!(report.value <= 3, "wce {}", report.value);
}

#[test]
fn errors_are_reported_cleanly() {
    let out = axmc()
        .args(["analyze", "--golden", "/nonexistent.aag"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = axmc().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn unknown_flags_are_rejected() {
    let out = axmc()
        .args(["analyze", "--golden", "g.aag", "--bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --bogus"), "{err}");
    assert!(err.contains("'analyze'"), "{err}");

    // A flag valid for one subcommand is still rejected for another.
    let out = axmc()
        .args(["stats", "--circuit", "c.aag", "--prove"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --prove"), "{err}");
}

#[test]
fn duplicate_flags_are_rejected() {
    let out = axmc()
        .args(["stats", "--circuit", "a.aag", "--circuit", "b.aag"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("duplicate flag --circuit"), "{err}");
}

#[test]
fn value_flags_require_values() {
    let out = axmc()
        .args(["analyze", "--golden"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--golden expects a value"), "{err}");

    // A following flag is not a value.
    let out = axmc()
        .args(["analyze", "--golden", "--approx", "c.aag"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--golden expects a value"), "{err}");
}

#[test]
fn metrics_and_trace_instrument_an_analysis() {
    let g = tmp("mt-g.aag");
    let c = tmp("mt-c.aag");
    let trace = tmp("mt-t.jsonl");
    for (kind, path, extra) in [
        ("adder", &g, None),
        ("trunc-adder", &c, Some(["--param", "2"])),
    ] {
        let mut cmd = axmc();
        cmd.args(["gen", "--kind", kind, "--width", "5"]);
        if let Some(extra) = extra {
            cmd.args(extra);
        }
        let out = cmd.arg("--out").arg(path).output().expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .args(["--metrics", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);

    // The analysis result is still printed, followed by the summary table.
    assert!(text.contains("worst-case error     : 6"), "{text}");
    assert!(text.contains("counters"), "{text}");
    assert!(text.contains("sat.solves"), "{text}");
    assert!(text.contains("histograms"), "{text}");
    assert!(text.contains("sat.solve.time_us"), "{text}");
    assert!(text.contains("core.search.probes"), "{text}");

    // Every trace line round-trips exactly through the event parser.
    let dump = std::fs::read_to_string(&trace).expect("trace file");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(!lines.is_empty(), "trace is empty");
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        let event = axmc::obs::Event::parse_json(line)
            .unwrap_or_else(|e| panic!("bad trace line '{line}': {e}"));
        assert_eq!(&event.to_json(), line, "round-trip changed the line");
        kinds.insert(event.kind);
    }
    for expected in ["sat.solve", "core.search.probe", "core.search.done"] {
        assert!(kinds.contains(expected), "no {expected} event in {kinds:?}");
    }
}

#[test]
fn evolve_progress_prints_live_lines() {
    let out = axmc()
        .args([
            "evolve",
            "--kind",
            "adder",
            "--width",
            "3",
            "--wcre",
            "15",
            "--seconds",
            "1",
            "--seed",
            "7",
            "--progress",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Progress is commentary: it must land on stderr (stdout stays
    // clean for piping) and carry the eval rate and time-limit ETA.
    // The first progress event is emitted unthrottled, so at least one
    // line is guaranteed even on a fast machine.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("evals/s"), "{err}");
    assert!(err.contains("ETA"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("evals/s"),
        "progress leaked to stdout: {text}"
    );
}

#[test]
fn jobs_flag_is_validated() {
    let out = axmc()
        .args(["evolve", "--kind", "adder", "--width", "3", "--jobs", "0"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs must be at least 1"), "{err}");

    let out = axmc()
        .args(["analyze", "--golden", "g.aag", "--jobs", "nope"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs"), "{err}");
}

#[test]
fn evolve_results_are_identical_across_jobs() {
    // Generation-bounded run (config path) so wall-clock cannot end the
    // search early on one side: the evolved circuit and the reported
    // area line must match bytewise between --jobs 1 and --jobs 8.
    let cfg = tmp("det.cfg");
    std::fs::write(
        &cfg,
        "GENERATIONS 30\nMAX_ERR_PERC 10\nPARAM_OUT 5\nPOP_MAX 4\n\
         MUTATION_MAX 4\nMAX_RUN_TIME 600\nSAT_LIMIT 20000\n",
    )
    .expect("write config");
    let mut runs = Vec::new();
    for jobs in ["1", "8"] {
        let out_path = tmp(&format!("det-{jobs}.aag"));
        let out = axmc()
            .args(["evolve", "--kind", "adder", "--width", "4", "--seed", "9"])
            .arg("--config")
            .arg(&cfg)
            .args(["--jobs", jobs, "--out"])
            .arg(&out_path)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let area_line = stdout
            .lines()
            .find(|l| l.starts_with("area:"))
            .unwrap_or_else(|| panic!("no area line in {stdout}"))
            .to_string();
        let circuit = std::fs::read(&out_path).expect("evolved file");
        runs.push((area_line, circuit));
    }
    assert_eq!(runs[0].0, runs[1].0, "area summary differs across jobs");
    assert_eq!(runs[0].1, runs[1].1, "evolved AIGER differs across jobs");
}

#[test]
fn timeout_yields_partial_result_and_exit_code_10() {
    let g = tmp("to-g.aag");
    let c = tmp("to-c.aag");
    for (kind, path, extra) in [
        ("adder", &g, None),
        ("trunc-adder", &c, Some(["--param", "2"])),
    ] {
        let mut cmd = axmc();
        cmd.args(["gen", "--kind", kind, "--width", "5"]);
        if let Some(extra) = extra {
            cmd.args(extra);
        }
        let out = cmd.arg("--out").arg(path).output().expect("spawn");
        assert!(out.status.success());
    }

    // An already-expired deadline: the analysis must stop before the first
    // solver call, report the trivial partial result, and exit 10 — never
    // panic.
    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .args(["--timeout", "0s"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(10), "expected the interrupted code");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("partial result"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    // A generous deadline never trips: output matches the untimed run.
    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .args(["--timeout", "2m"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worst-case error     : 6"), "{text}");
}

#[test]
fn invalid_durations_are_rejected() {
    for bad in ["nope", "1h30", ""] {
        let out = axmc()
            .args(["analyze", "--golden", "g.aag", "--timeout", bad])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "duration '{bad}' was accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid duration"), "{err}");
    }
}

#[test]
fn help_prints_usage() {
    let out = axmc().args(["--help"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("analyze"), "{text}");
    assert!(text.contains("evolve"), "{text}");
    assert!(text.contains("--engine"), "{text}");
}

#[test]
fn engine_choices_report_identical_metrics() {
    let g = tmp("eng-g.aag");
    let c = tmp("eng-c.aag");
    for (kind, param, path) in [("adder", None, &g), ("loa-adder", Some("4"), &c)] {
        let mut cmd = axmc();
        cmd.args(["gen", "--kind", kind, "--width", "8"]);
        if let Some(p) = param {
            cmd.args(["--param", p]);
        }
        let out = cmd.arg("--out").arg(path).output().expect("spawn");
        assert!(out.status.success());
    }
    // The metric values (everything before the parenthesized engine
    // attribution) must be byte-identical for every --engine choice.
    let run = |engine: &str| -> Vec<String> {
        let out = axmc()
            .args(["analyze", "--golden"])
            .arg(&g)
            .arg("--approx")
            .arg(&c)
            .args(["--engine", engine, "--average"])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains(" : "))
            .map(|l| l.split(" (").next().unwrap().to_string())
            .collect()
    };
    let sat = run("sat");
    let bdd = run("bdd");
    let auto = run("auto");
    assert!(
        sat.iter().any(|l| l.starts_with("worst-case error")),
        "{sat:?}"
    );
    assert!(
        sat.iter().any(|l| l.starts_with("mean abs error")),
        "{sat:?}"
    );
    assert_eq!(sat, bdd);
    assert_eq!(sat, auto);
}

#[test]
fn unknown_engines_are_rejected() {
    let out = axmc()
        .args([
            "analyze", "--golden", "x.aag", "--approx", "y.aag", "--engine", "cudd",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown engine 'cudd'"), "{err}");
}

/// One analyze run recorded into a run dir; shared scaffolding for the
/// artifact-bundle tests below.
fn record_run(tag: &str) -> PathBuf {
    let g = tmp(&format!("{tag}-g.aag"));
    let c = tmp(&format!("{tag}-c.aag"));
    for (kind, param, path) in [("adder", None, &g), ("trunc-adder", Some("4"), &c)] {
        let mut cmd = axmc();
        cmd.args(["gen", "--kind", kind, "--width", "10"]);
        if let Some(p) = param {
            cmd.args(["--param", p]);
        }
        let out = cmd.arg("--out").arg(path).output().expect("spawn");
        assert!(out.status.success());
    }
    let dir = tmp(&format!("{tag}-rundir"));
    let _ = std::fs::remove_dir_all(&dir);
    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .arg("--run-dir")
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

#[test]
fn run_dir_records_a_complete_artifact_bundle() {
    use axmc::obs::json::Json;
    let dir = record_run("bundle");
    for file in ["manifest.json", "trace.jsonl", "metrics.json"] {
        assert!(dir.join(file).is_file(), "missing {file}");
    }
    let manifest =
        Json::parse(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(
        manifest.get("schema").and_then(Json::as_str),
        Some("axmc-run-manifest-v1")
    );
    assert_eq!(
        manifest.get("command").and_then(Json::as_str),
        Some("analyze")
    );
    assert!(manifest.get("jobs").is_some());
    assert!(manifest.get("engine").is_some());
    // Resource usage is captured without unsafe via /proc; on Linux the
    // values must be present and sane.
    let proc = manifest.get("proc").expect("proc block");
    if cfg!(target_os = "linux") {
        let rss = proc.get("max_rss_kb").and_then(Json::as_f64).unwrap();
        assert!(rss > 100.0, "implausible peak RSS {rss} kB");
    }
    let metrics = Json::parse(&std::fs::read_to_string(dir.join("metrics.json")).unwrap()).unwrap();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("axmc-metrics-v1")
    );
    assert!(metrics.get("wall_ms").and_then(Json::as_f64).unwrap() > 0.0);
    // The trace must contain matched span.start/span.end pairs.
    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    let starts = trace.lines().filter(|l| l.contains("span.start")).count();
    let ends = trace.lines().filter(|l| l.contains("span.end")).count();
    assert!(starts > 0, "no spans recorded");
    assert_eq!(starts, ends, "unbalanced span events");
}

#[test]
fn report_attributes_the_whole_run_and_is_deterministic() {
    use axmc::obs::json::Json;
    let dir = record_run("report");
    let report = |extra: &[&str]| {
        let mut cmd = axmc();
        cmd.arg("report").arg("--run-dir").arg(&dir);
        cmd.args(extra);
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = report(&[]);
    // The synthetic root span covers the command, so it must head the
    // tree at 100% with a positive total, and every other attribution
    // line must stay within the root — structural span accounting, not
    // a wall-clock ratio (ratios flake under CI load).
    let run_line = first
        .lines()
        .find(|l| l.trim().ends_with(" run") && l.contains("100.0%"))
        .unwrap_or_else(|| panic!("no 100% run root in:\n{first}"));
    let run_ms: f64 = run_line.split_whitespace().next().unwrap().parse().unwrap();
    assert!(run_ms > 0.0, "run root recorded no time:\n{first}");
    for line in first.lines().filter(|l| l.contains('%')) {
        let ms: f64 = line.split_whitespace().next().unwrap().parse().unwrap();
        assert!(
            ms <= run_ms + 0.001,
            "span exceeds the run root ({run_ms} ms): {line}"
        );
    }
    // The recorded wall-clock exists and is positive; the span tree is
    // attributed against it but deliberately not ratio-checked here.
    let metrics = Json::parse(&std::fs::read_to_string(dir.join("metrics.json")).unwrap()).unwrap();
    let wall_ms = metrics.get("wall_ms").and_then(Json::as_f64).unwrap();
    assert!(wall_ms > 0.0, "metrics.json lost its wall_ms");
    assert!(first.contains("p95_us"), "{first}");
    // Replaying the same trace must render byte-identical output.
    assert_eq!(first, report(&[]), "report is nondeterministic");
    // --flame emits collapsed stacks: `frame;frame;... microseconds`.
    let flame_path = tmp("report-flame.txt");
    let _ = std::fs::remove_file(&flame_path);
    report(&["--flame", flame_path.to_str().unwrap()]);
    let flame = std::fs::read_to_string(&flame_path).unwrap();
    for line in flame.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack and value");
        assert!(stack.starts_with("run"), "stack not rooted at run: {line}");
        value.parse::<u64>().expect("self-time in microseconds");
    }
    assert!(
        flame.lines().any(|l| l.contains(';')),
        "no nested frame in:\n{flame}"
    );
}

#[test]
fn report_rejects_ambiguous_sources() {
    let out = axmc().arg("report").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exactly one of"), "{err}");
}

#[test]
fn bench_diff_passes_self_and_fails_injected_regression() {
    let dir = record_run("diff");
    // A run compared against itself must always pass (exit 0).
    let out = axmc()
        .arg("bench-diff")
        .arg("--base")
        .arg(&dir)
        .arg("--new")
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
    // Injecting a 10x slowdown into the wall-clock must trip the
    // threshold and exit with the dedicated regression code 12.
    let doctored = tmp("diff-slow.json");
    let text = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let wall = text
        .lines()
        .find(|l| l.contains("\"wall_ms\""))
        .expect("wall_ms line")
        .trim()
        .trim_end_matches(',')
        .to_string();
    let value: f64 = wall.split(':').nth(1).unwrap().trim().parse().unwrap();
    let slowed = text.replace(
        wall.split(':').nth(1).unwrap(),
        &format!(" {}", value * 10.0),
    );
    std::fs::write(&doctored, slowed).unwrap();
    let out = axmc()
        .arg("bench-diff")
        .arg("--base")
        .arg(&dir)
        .arg("--new")
        .arg(&doctored)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(12), "regression must exit 12");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
}

#[test]
fn serve_batches_match_analyze_and_hit_the_cache() {
    use axmc::obs::json::Json;
    use std::io::Write;
    let g = tmp("srv-g.aag");
    let c = tmp("srv-c.aag");
    for (kind, param, path) in [("adder", None, &g), ("trunc-adder", Some("2"), &c)] {
        let mut cmd = axmc();
        cmd.args(["gen", "--kind", kind, "--width", "5"]);
        if let Some(p) = param {
            cmd.args(["--param", p]);
        }
        let out = cmd.arg("--out").arg(path).output().expect("spawn");
        assert!(out.status.success());
    }
    // Three jobs, the third a byte-for-byte duplicate of the first.
    // --jobs 1 makes the duplicate a guaranteed cache hit (with several
    // workers two identical in-flight jobs could both miss — a benign
    // race, but not a deterministic test).
    let job = |id: &str| {
        format!(
            r#"{{"id":"{id}","golden":{g:?},"candidate":{c:?},"metric":"wce"}}"#,
            g = g.to_str().unwrap(),
            c = c.to_str().unwrap(),
        )
    };
    let other = format!(
        r#"{{"id":"other","golden":{g:?},"candidate":{c:?},"metric":"exceeds","threshold":3}}"#,
        g = g.to_str().unwrap(),
        c = c.to_str().unwrap(),
    );
    let batch = format!("{}\n{other}\n{}\n", job("first"), job("first-again"));
    let mut child = axmc()
        .args(["serve", "--jobs", "1", "--metrics"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(batch.as_bytes())
        .expect("write batch");
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<Json> = text
        .lines()
        .take_while(|l| l.starts_with('{'))
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad line '{l}': {e}")))
        .collect();
    let result_of = |id: &str| -> &Json {
        lines
            .iter()
            .find(|l| {
                l.get("event").and_then(Json::as_str) == Some("result")
                    && l.get("id").and_then(Json::as_str) == Some(id)
            })
            .unwrap_or_else(|| panic!("no result for {id} in:\n{text}"))
    };
    // The served verdict equals the single-shot `axmc analyze` value
    // (truncated adder, cut 2: WCE = 2^3 - 2 = 6).
    let cold = result_of("first");
    assert_eq!(
        cold.get("result").unwrap().get("value"),
        Some(&Json::Str("6".into())),
        "{text}"
    );
    assert_eq!(cold.get("cached"), Some(&Json::Bool(false)), "{text}");
    // The duplicate is served from the cache, byte-identically.
    let replay = result_of("first-again");
    assert_eq!(replay.get("cached"), Some(&Json::Bool(true)), "{text}");
    assert_eq!(
        replay.get("result").unwrap().render(),
        cold.get("result").unwrap().render(),
        "cache replay must be byte-identical"
    );
    let done = lines
        .iter()
        .find(|l| l.get("event").and_then(Json::as_str) == Some("done"))
        .unwrap_or_else(|| panic!("no done line in:\n{text}"));
    assert_eq!(done.get("jobs").and_then(Json::as_f64), Some(3.0));
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(3.0));
    assert_eq!(done.get("cache_hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(done.get("cache_misses").and_then(Json::as_f64), Some(2.0));
    // --metrics: the summary table after the JSONL carries the cache
    // counters and the per-job span.
    assert!(text.contains("serve.cache.hit"), "{text}");
    assert!(text.contains("serve.cache.miss"), "{text}");
    assert!(text.contains("serve.job"), "{text}");
}
