//! End-to-end tests of the `axmc` command-line tool: generate circuits,
//! analyze them, evolve with a certificate, and read the outputs back.

use std::path::PathBuf;
use std::process::Command;

fn axmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_axmc"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("axmc-cli-test-{}-{name}", std::process::id()));
    dir
}

#[test]
fn gen_analyze_round_trip() {
    let g = tmp("g.aag");
    let c = tmp("c.aag");
    let s1 = axmc()
        .args(["gen", "--kind", "adder", "--width", "5", "--out"])
        .arg(&g)
        .output()
        .expect("spawn");
    assert!(s1.status.success(), "{}", String::from_utf8_lossy(&s1.stderr));
    let s2 = axmc()
        .args(["gen", "--kind", "trunc-adder", "--width", "5", "--param", "2", "--out"])
        .arg(&c)
        .output()
        .expect("spawn");
    assert!(s2.status.success());

    let out = axmc()
        .args(["analyze", "--golden"])
        .arg(&g)
        .arg("--approx")
        .arg(&c)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Truncated adder cut 2: WCE = 2^3 - 2 = 6.
    assert!(text.contains("worst-case error     : 6"), "{text}");
    assert!(text.contains("combinational analysis"), "{text}");
}

#[test]
fn stats_reports_structure() {
    let g = tmp("s.aag");
    axmc()
        .args(["gen", "--kind", "multiplier", "--width", "3", "--out"])
        .arg(&g)
        .output()
        .expect("spawn");
    let out = axmc().args(["stats", "--circuit"]).arg(&g).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("inputs  : 6"), "{text}");
    assert!(text.contains("outputs : 6"), "{text}");
    assert!(text.contains("latches : 0"), "{text}");
}

#[test]
fn evolve_produces_certified_circuit() {
    let out_path = tmp("e.aag");
    let out = axmc()
        .args([
            "evolve", "--kind", "adder", "--width", "4", "--wcre", "10", "--seconds", "2",
            "--seed", "3", "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Load the result and check the certificate independently.
    let text = std::fs::read_to_string(&out_path).expect("evolved file");
    let evolved = axmc::aig::aiger::from_ascii(&text).expect("valid aiger");
    let golden = axmc::circuit::generators::ripple_carry_adder(4).to_aig();
    let report = axmc::CombAnalyzer::new(&golden, &evolved)
        .worst_case_error()
        .expect("analysis");
    // WCRE 10% of 2^5 = 3.2 -> threshold 3.
    assert!(report.value <= 3, "wce {}", report.value);
}

#[test]
fn errors_are_reported_cleanly() {
    let out = axmc().args(["analyze", "--golden", "/nonexistent.aag"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = axmc().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = axmc().args(["--help"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("analyze"), "{text}");
    assert!(text.contains("evolve"), "{text}");
}
