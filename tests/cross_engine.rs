#![cfg(feature = "proptest-tests")]

//! Cross-engine agreement tests: the three model-checking engines (BMC,
//! k-induction, explicit reachability) must tell one consistent story on
//! randomly generated sequential property circuits.

use axmc::aig::{Aig, Lit, Word};
use axmc::mc::{explicit_reach, prove_invariant, Bmc, BmcResult, InductionOptions, ProofResult};
use proptest::prelude::*;

/// A random small sequential single-output circuit: a few latches with
/// random next-state logic over latches and inputs, plus a random output
/// predicate. Rich enough to exercise reachable/unreachable bad states.
fn random_machine() -> impl Strategy<Value = Aig> {
    (
        1usize..=3, // inputs
        2usize..=4, // latches
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>(), 0u8..3), 4..20),
        any::<u32>(), // output shape
    )
        .prop_map(|(n_in, n_latch, gates, out_sel)| {
            let mut aig = Aig::new();
            let inputs = aig.add_inputs(n_in);
            let latches: Vec<Lit> = (0..n_latch).map(|_| aig.add_latch(false)).collect();
            let mut nodes: Vec<Lit> = inputs.iter().chain(latches.iter()).copied().collect();
            for (a, b, neg, op) in gates {
                let la = nodes[a as usize % nodes.len()];
                let lb = nodes[b as usize % nodes.len()].negate_if(neg);
                let y = match op {
                    0 => aig.and(la, lb),
                    1 => aig.or(la, lb),
                    _ => aig.xor(la, lb),
                };
                nodes.push(y);
            }
            // Next-state functions from the tail of the node list.
            let n = nodes.len();
            for (k, _) in latches.iter().enumerate() {
                let next = nodes[(n - 1 - k) % n];
                aig.set_latch_next(k, next);
            }
            // Output: a conjunction of the latch bits xored by out_sel —
            // a specific state predicate, reachable or not.
            let terms: Vec<Lit> = latches
                .iter()
                .enumerate()
                .map(|(i, &l)| l.negate_if((out_sel >> i) & 1 == 1))
                .collect();
            let bad = aig.and_all(&terms);
            aig.add_output(bad);
            aig
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bmc_agrees_with_explicit_reachability(aig in random_machine()) {
        let horizon = 6;
        let explicit = explicit_reach(&aig, horizon);
        let mut bmc = Bmc::new(&aig);
        // Earliest violation per BMC.
        let mut bmc_depth = None;
        for k in 0..=horizon {
            if matches!(bmc.check_at(k), Ok(BmcResult::Cex(_))) {
                bmc_depth = Some(k);
                break;
            }
        }
        prop_assert_eq!(bmc_depth, explicit.bad_depth);
    }

    #[test]
    fn disjunctive_query_agrees_with_scan(aig in random_machine()) {
        let horizon = 5;
        let mut a = Bmc::new(&aig);
        let mut b = Bmc::new(&aig);
        let scan = a.check_up_to(horizon);
        let disj = b.check_any_up_to(horizon);
        prop_assert_eq!(
            matches!(scan, Ok(BmcResult::Cex(_))),
            matches!(disj, Ok(BmcResult::Cex(_)))
        );
    }

    #[test]
    fn induction_proofs_imply_unreachability(aig in random_machine()) {
        let opts = InductionOptions {
            max_k: 4,
            simple_path: true,
            ..InductionOptions::default()
        };
        match prove_invariant(&aig, &opts) {
            Ok(ProofResult::Proved { .. }) => {
                // Exhaustive search over the full (tiny) state space must
                // confirm: bad is unreachable at ANY depth.
                let r = explicit_reach(&aig, usize::MAX);
                prop_assert_eq!(r.bad_depth, None, "proof contradicted by explicit search");
            }
            Ok(ProofResult::Falsified(trace)) => {
                // The trace must actually reach the bad output.
                let outs = trace.final_outputs(&aig);
                prop_assert!(outs[0], "falsification trace does not violate");
            }
            Ok(ProofResult::Unknown { .. }) => {}
            Err(e) => prop_assert!(false, "uncertified run rejected a certificate: {e}"),
        }
    }

    #[test]
    fn cex_traces_always_replay_to_violation(aig in random_machine()) {
        let mut bmc = Bmc::new(&aig);
        if let Ok(BmcResult::Cex(trace)) = bmc.check_any_up_to(6) {
            let replays = trace.replay(&aig);
            prop_assert!(
                replays.iter().any(|outs| outs[0]),
                "counterexample does not witness the violation"
            );
        }
    }
}

#[test]
fn counter_example_machine_consistency() {
    // Deterministic spot-check: 3-bit counter, bad = 5.
    let mut aig = Aig::new();
    let state = Word::from_lits((0..3).map(|_| aig.add_latch(false)).collect());
    let (next, _) = state.add(&mut aig, &Word::constant(1, 3));
    for (k, &b) in next.bits().iter().enumerate() {
        aig.set_latch_next(k, b);
    }
    let eq = state.equals(&mut aig, &Word::constant(5, 3));
    aig.add_output(eq);

    assert_eq!(explicit_reach(&aig, 50).bad_depth, Some(5));
    let mut bmc = Bmc::new(&aig);
    assert!(matches!(bmc.check_any_up_to(5), Ok(BmcResult::Cex(_))));
    assert!(matches!(
        prove_invariant(&aig, &InductionOptions::default()),
        Ok(ProofResult::Falsified(_))
    ));
}
