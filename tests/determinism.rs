//! Determinism suite for the parallel oracle layer: every engine that
//! accepts a `jobs` knob must produce the same *results* regardless of
//! the worker count.
//!
//! Two different guarantees are checked, matching the design:
//!
//! - **CGP searches** (`evolve`, `evolve_in_context`) promise bytewise
//!   trajectory identity: a fixed seed yields the same chromosome, area
//!   history and counter set for every `jobs` value, because breeding is
//!   serial and verification is pure per candidate.
//! - **Sequential threshold searches** (`SeqAnalyzer`) promise *value*
//!   identity: batched probing visits different thresholds than serial
//!   probing, so `sat_calls`/`conflicts` may differ, but every answer is
//!   authoritative for its own threshold and the computed error metrics
//!   are exact either way.
//!
//! The parallel worker count defaults to 8 and can be varied via
//! `AXMC_TEST_JOBS` — the CI stress step loops this suite with several
//! values to shake out scheduling-dependent bugs.

use axmc::cgp::{evolve_in_context, SequentialContext, Verifier};
use axmc::circuit::{approx, generators};
use axmc::sat::Budget;
use axmc::{evolve, AnalysisOptions, SearchOptions, SeqAnalyzer};
use std::time::Duration;

/// The "many workers" side of every comparison (`AXMC_TEST_JOBS`, default 8).
fn test_jobs() -> usize {
    std::env::var("AXMC_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8)
}

fn cgp_options(seed: u64) -> SearchOptions {
    SearchOptions {
        threshold: 3,
        population: 4,
        max_mutations: 4,
        max_generations: 40,
        // Generous: generation count must be the only stopping rule, or
        // the trajectories could diverge by wall-clock alone.
        time_limit: Duration::from_secs(600),
        verifier: Verifier::Sat {
            budget: Budget::unlimited().with_conflicts(20_000),
        },
        seed,
        extra_cols: 2,
        ..SearchOptions::default()
    }
}

#[test]
fn evolve_trajectory_is_identical_across_jobs() {
    let golden = generators::ripple_carry_adder(4);
    for seed in [3, 17] {
        let mut serial_opts = cgp_options(seed);
        serial_opts.jobs = 1;
        let serial = evolve(&golden, &serial_opts).unwrap();
        for jobs in [2, test_jobs()] {
            let mut par_opts = cgp_options(seed);
            par_opts.jobs = jobs;
            let par = evolve(&golden, &par_opts).unwrap();
            assert_eq!(
                serial.best.genes(),
                par.best.genes(),
                "seed {seed}, jobs {jobs}: different chromosome"
            );
            assert_eq!(serial.area, par.area, "seed {seed}, jobs {jobs}");
            let mut a = serial.stats.clone();
            let mut b = par.stats.clone();
            a.elapsed = Duration::ZERO;
            b.elapsed = Duration::ZERO;
            assert_eq!(a, b, "seed {seed}, jobs {jobs}: different trajectory");
        }
    }
}

#[test]
fn evolve_in_context_trajectory_is_identical_across_jobs() {
    let golden = generators::ripple_carry_adder(3);
    let context = SequentialContext {
        build: &|c| axmc::seq::accumulator(c, 3),
        horizon: 2,
        budget: Budget::unlimited().with_conflicts(20_000),
    };
    let mut serial_opts = cgp_options(31);
    serial_opts.threshold = 4;
    serial_opts.max_generations = 30;
    serial_opts.jobs = 1;
    let serial = evolve_in_context(&golden, &context, &serial_opts).unwrap();
    let mut par_opts = serial_opts.clone();
    par_opts.jobs = test_jobs();
    let par = evolve_in_context(&golden, &context, &par_opts).unwrap();
    assert_eq!(serial.best.genes(), par.best.genes());
    assert_eq!(serial.area, par.area);
    let mut a = serial.stats.clone();
    let mut b = par.stats.clone();
    a.elapsed = Duration::ZERO;
    b.elapsed = Duration::ZERO;
    assert_eq!(a, b);
}

#[test]
fn pareto_front_is_identical_across_jobs() {
    let golden = generators::ripple_carry_adder(4);
    let thresholds = [1u128, 3, 6];
    let front = |jobs: usize| {
        let mut base = cgp_options(5);
        base.max_generations = 20;
        base.jobs = jobs;
        axmc::cgp::pareto_front(&golden, &thresholds, &base).unwrap()
    };
    let serial = front(1);
    let parallel = front(test_jobs());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.threshold, p.threshold);
        assert_eq!(s.wcre_percent, p.wcre_percent);
        assert_eq!(s.result.best.genes(), p.result.best.genes());
        assert_eq!(s.result.area, p.result.area);
    }
}

#[test]
fn seq_analyzer_values_are_identical_across_jobs() {
    let width = 4;
    let golden = axmc::seq::accumulator(&generators::ripple_carry_adder(width), width);
    let cheap = axmc::seq::accumulator(&approx::lower_or_adder(width, 2), width);
    let horizon = 4;

    let serial =
        SeqAnalyzer::new(&golden, &cheap).with_options(AnalysisOptions::new().with_jobs(1));
    let parallel = SeqAnalyzer::new(&golden, &cheap)
        .with_options(AnalysisOptions::new().with_jobs(test_jobs()));

    // Portfolio probing visits different thresholds, so only the exact
    // metric values (not the sat_calls/conflicts bookkeeping) must agree.
    assert_eq!(
        serial.worst_case_error_at(horizon).unwrap().value,
        parallel.worst_case_error_at(horizon).unwrap().value,
    );
    assert_eq!(
        serial.bit_flip_error_at(horizon).unwrap().value,
        parallel.bit_flip_error_at(horizon).unwrap().value,
    );
    assert_eq!(
        serial.error_profile(horizon).unwrap().profile,
        parallel.error_profile(horizon).unwrap().profile,
    );
    assert_eq!(
        serial.total_error_at(horizon, width + 3).unwrap().value,
        parallel.total_error_at(horizon, width + 3).unwrap().value,
    );
    assert_eq!(
        serial.max_error_cycles_at(horizon, 0).unwrap().value,
        parallel.max_error_cycles_at(horizon, 0).unwrap().value,
    );
}

#[test]
fn clause_sharing_and_inprocessing_are_jobs_invariant() {
    // The SAT speed stack must not change any answer: with clause
    // sharing and inprocessing enabled, every jobs value reports the
    // same metric values as the plain serial analyzer. (Shared clauses
    // are RUP-validated imports and inprocessing is equivalence-
    // preserving, so only *timing* may change.)
    let width = 4;
    let golden = axmc::seq::accumulator(&generators::ripple_carry_adder(width), width);
    let cheap = axmc::seq::accumulator(&approx::lower_or_adder(width, 2), width);
    let horizon = 4;
    let serial =
        SeqAnalyzer::new(&golden, &cheap).with_options(AnalysisOptions::new().with_jobs(1));
    let wce = serial.worst_case_error_at(horizon).unwrap().value;
    let bf = serial.bit_flip_error_at(horizon).unwrap().value;
    for jobs in [2, test_jobs()] {
        let tuned = SeqAnalyzer::new(&golden, &cheap).with_options(
            AnalysisOptions::new()
                .with_jobs(jobs)
                .with_clause_sharing(true)
                .with_inprocessing(true),
        );
        assert_eq!(
            wce,
            tuned.worst_case_error_at(horizon).unwrap().value,
            "jobs {jobs}: sharing/inprocessing changed the WCE"
        );
        assert_eq!(
            bf,
            tuned.bit_flip_error_at(horizon).unwrap().value,
            "jobs {jobs}: sharing/inprocessing changed the bit-flip error"
        );
    }
}

#[test]
fn seq_analyzer_parallel_runs_are_reproducible() {
    // Same jobs value twice: byte-identical reports, including the
    // bookkeeping (lane i always owns engine i, so even the conflict
    // totals are stable run-to-run).
    let width = 4;
    let golden = axmc::seq::accumulator(&generators::ripple_carry_adder(width), width);
    let cheap = axmc::seq::accumulator(&approx::truncated_adder(width, 2), width);
    let jobs = test_jobs();
    let a = SeqAnalyzer::new(&golden, &cheap)
        .with_options(AnalysisOptions::new().with_jobs(jobs))
        .worst_case_error_at(3)
        .unwrap();
    let b = SeqAnalyzer::new(&golden, &cheap)
        .with_options(AnalysisOptions::new().with_jobs(jobs))
        .worst_case_error_at(3)
        .unwrap();
    assert_eq!(a, b);
}
