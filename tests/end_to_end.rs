//! End-to-end integration tests spanning the whole stack: circuit
//! generators -> sequential embedding -> miters -> SAT/BMC engines ->
//! error reports, plus the CGP loop consuming the formal oracle.

use axmc::circuit::{approx, generators};
use axmc::core::{exhaustive_stats, CombAnalyzer, SeqAnalyzer};
use axmc::mc::{explicit_reach, Trace};
use axmc::miter::sequential_diff_miter;
use axmc::seq::{accumulator, registered_alu, wide_accumulator};
use axmc::{evolve, InductionOptions, SearchOptions, Verdict};
use std::time::Duration;

#[test]
fn comb_pipeline_adder() {
    // Generator -> miter -> SAT search == exhaustive truth.
    let golden = generators::ripple_carry_adder(7).to_aig();
    let cand = approx::lower_or_adder(7, 3).to_aig();
    let exact = exhaustive_stats(&golden, &cand);
    let report = CombAnalyzer::new(&golden, &cand)
        .worst_case_error()
        .unwrap();
    assert_eq!(report.value, exact.wce);
}

#[test]
fn sequential_wce_agrees_with_explicit_model_checking() {
    // The BMC-based threshold answer must agree with exhaustive
    // state-space exploration of the very same miter.
    let width = 4;
    let golden = accumulator(&generators::ripple_carry_adder(width), width);
    let apx = accumulator(&approx::truncated_adder(width, 1), width);
    let analyzer = SeqAnalyzer::new(&golden, &apx);
    let horizon = 4;
    let wce = analyzer.worst_case_error_at(horizon).unwrap().value;
    assert!(wce > 0);

    // err > wce - 1 must be reachable, err > wce must not — confirmed by
    // the explicit engine on the single-output miter.
    let reachable = sequential_diff_miter(&golden, &apx, wce - 1);
    let r = explicit_reach(&reachable, horizon);
    assert!(r.bad_depth.is_some());
    assert!(r.bad_depth.unwrap() <= horizon);

    let unreachable = sequential_diff_miter(&golden, &apx, wce);
    let r = explicit_reach(&unreachable, horizon);
    assert_eq!(r.bad_depth, None);
}

#[test]
fn wce_witness_traces_replay_correctly() {
    let width = 4;
    let golden = wide_accumulator(&generators::ripple_carry_adder(width + 2), width, width + 2);
    let apx = wide_accumulator(&approx::lower_or_adder(width + 2, 2), width, width + 2);
    let analyzer = SeqAnalyzer::new(&golden, &apx);
    let trace = analyzer
        .check_error_exceeds(0, 3)
        .unwrap()
        .witness()
        .expect("diverges");
    assert!(analyzer.trace_error(&trace) > 0);
    // A manually-constructed all-zero trace shows no error.
    let silent = Trace {
        inputs: vec![vec![false; width]; 4],
    };
    assert_eq!(analyzer.trace_error(&silent), 0);
}

#[test]
fn unbounded_proof_matches_combinational_bound_on_pipeline() {
    let width = 5;
    let cut = 2;
    let golden = registered_alu(&generators::ripple_carry_adder(width), width);
    let apx = registered_alu(&approx::truncated_adder(width, cut), width);
    let analyzer = SeqAnalyzer::new(&golden, &apx);
    let bound = (1u128 << (cut + 1)) - 2;
    let opts = InductionOptions {
        max_k: 4,
        simple_path: false,
        ..InductionOptions::default()
    };
    assert!(matches!(
        analyzer.prove_error_bound(bound, &opts),
        Ok(Verdict::Proved)
    ));
    assert!(matches!(
        analyzer.prove_error_bound(bound - 1, &opts),
        Ok(Verdict::Refuted { .. })
    ));
}

#[test]
fn evolved_circuit_certificate_survives_independent_check() {
    // CGP result (UNSAT certificate) re-verified by two independent
    // paths: exhaustive sweep and the analyzer's own search.
    let golden_nl = generators::ripple_carry_adder(5);
    let options = SearchOptions {
        threshold: 4,
        max_generations: 300,
        time_limit: Duration::from_secs(20),
        seed: 17,
        extra_cols: 4,
        ..SearchOptions::default()
    };
    let result = evolve(&golden_nl, &options).unwrap();
    let golden = golden_nl.to_aig();
    let evolved = result.netlist.to_aig();
    let exact = exhaustive_stats(&golden, &evolved);
    assert!(exact.wce <= 4, "certificate violated: wce {}", exact.wce);
    let formal = CombAnalyzer::new(&golden, &evolved)
        .worst_case_error()
        .unwrap();
    assert_eq!(formal.value, exact.wce);
}

#[test]
fn evolved_component_behaves_in_system_context() {
    // Evolve an approximate adder, embed it in an accumulator, and check
    // the system-level error stays within k * threshold (each cycle adds
    // at most the component's worst case).
    let width = 4;
    let threshold = 2u128;
    let golden_nl = generators::ripple_carry_adder(width);
    let options = SearchOptions {
        threshold,
        max_generations: 300,
        time_limit: Duration::from_secs(20),
        seed: 23,
        extra_cols: 4,
        ..SearchOptions::default()
    };
    let result = evolve(&golden_nl, &options).unwrap();
    // The evolved netlist may have fewer gates but keeps the interface.
    let golden_sys = accumulator(&golden_nl, width);
    let evolved_sys = accumulator(&result.netlist, width);
    let analyzer = SeqAnalyzer::new(&golden_sys, &evolved_sys);
    let k = 3;
    let wce = analyzer.worst_case_error_at(k).unwrap().value;
    // Modular wrap can inflate the metric; bound only when far from wrap.
    if wce < (1 << width) / 2 {
        assert!(
            wce <= threshold * (k as u128 + 1),
            "system error {wce} exceeds additive bound"
        );
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // Compile-time check that the top-level API surface hangs together.
    let g = generators::ripple_carry_adder(4).to_aig();
    let c = approx::truncated_adder(4, 1).to_aig();
    let miter = axmc::miter::strict_miter(&g, &c);
    let mut bmc = axmc::Bmc::new(&miter);
    assert!(matches!(bmc.check_at(0), Ok(axmc::BmcResult::Cex(_))));
}
