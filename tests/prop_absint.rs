#![cfg(feature = "proptest-tests")]

//! Property tests for the static pre-analysis tier (`axmc-absint`):
//! the structural sweep must be equisatisfiable (identical outputs on
//! 256 random vectors, pre vs post reduction), the ternary fixpoint must
//! over-approximate every concrete run, and the certified word interval
//! must bracket the true range.

use axmc::absint::{semantic_facts, static_word_bounds, sweep, TernaryAnalysis};
use axmc::aig::{bits_to_u128, Aig, Lit, Simulator};
use proptest::prelude::*;

/// A random combinational multi-output AIG over a handful of inputs.
fn random_comb() -> impl Strategy<Value = Aig> {
    (
        1usize..=6, // inputs
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>(), 0u8..3), 4..24),
        1usize..=4, // outputs
    )
        .prop_map(|(n_in, gates, n_out)| {
            let mut aig = Aig::new();
            let inputs = aig.add_inputs(n_in);
            let mut nodes: Vec<Lit> = inputs.clone();
            // A constant leaf gives the sweep something to fold.
            nodes.push(Lit::FALSE);
            for (a, b, neg, op) in gates {
                let la = nodes[a as usize % nodes.len()];
                let lb = nodes[b as usize % nodes.len()].negate_if(neg);
                let y = match op {
                    0 => aig.and(la, lb),
                    1 => aig.or(la, lb),
                    _ => aig.xor(la, lb),
                };
                nodes.push(y);
            }
            for k in 0..n_out {
                aig.add_output(nodes[nodes.len() - 1 - (k % nodes.len())]);
            }
            aig
        })
}

/// A random small sequential machine with a couple of latches and a
/// multi-bit output word.
fn random_seq() -> impl Strategy<Value = Aig> {
    (
        1usize..=3, // inputs
        1usize..=3, // latches
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>(), 0u8..3), 4..20),
        any::<bool>(), // freeze one latch?
    )
        .prop_map(|(n_in, n_latch, gates, freeze)| {
            let mut aig = Aig::new();
            let inputs = aig.add_inputs(n_in);
            let latches: Vec<Lit> = (0..n_latch).map(|_| aig.add_latch(false)).collect();
            let mut nodes: Vec<Lit> = inputs.iter().chain(latches.iter()).copied().collect();
            for (a, b, neg, op) in gates {
                let la = nodes[a as usize % nodes.len()];
                let lb = nodes[b as usize % nodes.len()].negate_if(neg);
                let y = match op {
                    0 => aig.and(la, lb),
                    1 => aig.or(la, lb),
                    _ => aig.xor(la, lb),
                };
                nodes.push(y);
            }
            let n = nodes.len();
            for k in 0..n_latch {
                // Optionally freeze latch 0 so ABS003/frozen-latch
                // rewrites actually fire on a fair share of cases.
                let next = if freeze && k == 0 {
                    latches[0]
                } else {
                    nodes[(n - 1 - k) % n]
                };
                aig.set_latch_next(k, next);
            }
            for k in 0..2usize.min(n) {
                aig.add_output(nodes[n - 1 - k]);
            }
            aig
        })
}

/// Deterministic xorshift input vectors (the proptest RNG shapes the
/// circuit; the vector stream is fixed so failures replay exactly).
fn vectors(n_in: usize, count: usize) -> Vec<Vec<bool>> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..count)
        .map(|_| {
            (0..n_in)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Runs a sequential circuit from reset over an input trace, returning
/// the per-cycle output words (lane 0 of the 64-way simulator).
fn run_seq(aig: &Aig, trace: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let mut sim = Simulator::new(aig);
    trace
        .iter()
        .map(|inputs| {
            let lanes: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
            sim.step(&lanes).iter().map(|&o| o & 1 == 1).collect()
        })
        .collect()
}

/// Per-cycle latch states from reset over an input trace (the state
/// *after* each step).
fn run_states(aig: &Aig, trace: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let mut sim = Simulator::new(aig);
    trace
        .iter()
        .map(|inputs| {
            let lanes: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
            sim.step(&lanes);
            sim.state().iter().map(|&s| s & 1 == 1).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_is_equisatisfiable_on_comb_circuits(aig in random_comb()) {
        let (swept, report) = sweep(&aig);
        prop_assert_eq!(swept.num_inputs(), aig.num_inputs());
        prop_assert_eq!(swept.num_outputs(), aig.num_outputs());
        prop_assert!(report.nodes_after <= report.nodes_before);
        for v in vectors(aig.num_inputs(), 256) {
            prop_assert_eq!(
                aig.eval_comb(&v),
                swept.eval_comb(&v),
                "sweep changed an output"
            );
        }
    }

    #[test]
    fn sweep_is_equisatisfiable_on_seq_circuits(aig in random_seq()) {
        let (swept, _) = sweep(&aig);
        prop_assert_eq!(swept.num_latches(), aig.num_latches());
        let n_in = aig.num_inputs();
        for chunk in vectors(n_in, 256).chunks(8) {
            prop_assert_eq!(
                run_seq(&aig, chunk),
                run_seq(&swept, chunk),
                "sweep changed a sequential behaviour"
            );
        }
    }

    #[test]
    fn ternary_fixpoint_over_approximates_every_run(aig in random_seq()) {
        let analysis = TernaryAnalysis::fixpoint(&aig);
        prop_assert!(analysis.converged());
        let n_in = aig.num_inputs();
        for chunk in vectors(n_in, 128).chunks(8) {
            for state in run_states(&aig, chunk) {
                for (k, &bit) in state.iter().enumerate() {
                    if let Some(c) = analysis.latch_value(k).as_const() {
                        prop_assert_eq!(c, bit, "latch {} left its proven constant", k);
                    }
                }
            }
        }
        // Frozen-latch facts are a subset of the above, but check the
        // reporting surface too.
        for k in semantic_facts(&aig).frozen_latches {
            prop_assert!(analysis.latch_value(k).is_const());
        }
    }

    #[test]
    fn word_interval_brackets_the_concrete_range(aig in random_comb()) {
        if let Some(bounds) = static_word_bounds(&aig, 32) {
            let (lo, hi) = bounds.interval;
            for v in vectors(aig.num_inputs(), 256) {
                let word = bits_to_u128(&aig.eval_comb(&v));
                prop_assert!(word <= hi, "word {} above certified hi {}", word, hi);
            }
            prop_assert!(lo <= hi);
        }
    }
}
