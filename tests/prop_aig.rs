#![cfg(feature = "proptest-tests")]

//! Property-based tests of the AIG substrate: word-level arithmetic
//! against native integers, structural invariants of compaction, AIGER
//! round-trips, and simulator/evaluator agreement.

use axmc::aig::{aiger, bits_to_i128, bits_to_u128, u128_to_bits, Aig, Simulator, Word};
use proptest::prelude::*;

fn eval_u128(aig: &Aig, bits: &[bool]) -> u128 {
    bits_to_u128(&aig.eval_comb(bits))
}

proptest! {
    #[test]
    fn word_add_matches_integers(a in 0u128..=0xFFFF, b in 0u128..=0xFFFF, width in 1usize..16) {
        let a = a & ((1 << width) - 1);
        let b = b & ((1 << width) - 1);
        let mut aig = Aig::new();
        let wa = Word::new_inputs(&mut aig, width);
        let wb = Word::new_inputs(&mut aig, width);
        let (sum, carry) = wa.add(&mut aig, &wb);
        for &bit in sum.bits() {
            aig.add_output(bit);
        }
        aig.add_output(carry);
        let mut input = u128_to_bits(a, width);
        input.extend(u128_to_bits(b, width));
        prop_assert_eq!(eval_u128(&aig, &input), a + b);
    }

    #[test]
    fn word_sub_signed_matches_integers(a in 0u128..=0xFFFF, b in 0u128..=0xFFFF, width in 1usize..16) {
        let a = a & ((1 << width) - 1);
        let b = b & ((1 << width) - 1);
        let mut aig = Aig::new();
        let wa = Word::new_inputs(&mut aig, width);
        let wb = Word::new_inputs(&mut aig, width);
        let diff = wa.sub_signed(&mut aig, &wb);
        for &bit in diff.bits() {
            aig.add_output(bit);
        }
        let mut input = u128_to_bits(a, width);
        input.extend(u128_to_bits(b, width));
        let out = aig.eval_comb(&input);
        prop_assert_eq!(bits_to_i128(&out), a as i128 - b as i128);
    }

    #[test]
    fn ugt_const_matches_compare(a in 0u128..=0xFFFF, t in 0u128..=0x1FFFF, width in 1usize..16) {
        let a = a & ((1 << width) - 1);
        let mut aig = Aig::new();
        let wa = Word::new_inputs(&mut aig, width);
        let flag = wa.ugt_const(&mut aig, t);
        aig.add_output(flag);
        let input = u128_to_bits(a, width);
        prop_assert_eq!(aig.eval_comb(&input)[0], a > t);
    }

    #[test]
    fn popcount_matches_count_ones(a in 0u128..=0x3FFFFF, width in 1usize..20) {
        let a = a & ((1 << width) - 1);
        let mut aig = Aig::new();
        let wa = Word::new_inputs(&mut aig, width);
        let pc = wa.popcount(&mut aig);
        for &bit in pc.bits() {
            aig.add_output(bit);
        }
        let input = u128_to_bits(a, width);
        prop_assert_eq!(eval_u128(&aig, &input), a.count_ones() as u128);
    }

    #[test]
    fn abs_matches_integer_abs(raw in any::<u16>(), width in 2usize..17) {
        let pattern = (raw as u128) & ((1 << width) - 1);
        let mut aig = Aig::new();
        let w = Word::new_inputs(&mut aig, width);
        let abs = w.abs(&mut aig);
        for &bit in abs.bits() {
            aig.add_output(bit);
        }
        let input = u128_to_bits(pattern, width);
        let signed = bits_to_i128(&input);
        // Hardware semantics: the most negative value maps to itself.
        let expect = signed.unsigned_abs() % (1u128 << width);
        prop_assert_eq!(eval_u128(&aig, &input), expect);
    }

    #[test]
    fn bit_conversions_round_trip(v in any::<u64>(), width in 1usize..64) {
        let masked = (v as u128) & ((1 << width) - 1);
        prop_assert_eq!(bits_to_u128(&u128_to_bits(masked, width)), masked);
    }
}

/// A strategy producing a small random combinational AIG together with
/// enough structure to compare behaviors.
fn random_aig(max_inputs: usize, max_gates: usize) -> impl Strategy<Value = Aig> {
    (
        1..=max_inputs,
        proptest::collection::vec(
            (
                any::<u32>(),
                any::<u32>(),
                any::<bool>(),
                any::<bool>(),
                0u8..3,
            ),
            1..=max_gates,
        ),
    )
        .prop_map(|(n_in, gates)| {
            let mut aig = Aig::new();
            let inputs = aig.add_inputs(n_in);
            let mut nodes: Vec<axmc::aig::Lit> = inputs;
            for (a, b, na, nb, op) in gates {
                let la = nodes[a as usize % nodes.len()].negate_if(na);
                let lb = nodes[b as usize % nodes.len()].negate_if(nb);
                let y = match op {
                    0 => aig.and(la, lb),
                    1 => aig.or(la, lb),
                    _ => aig.xor(la, lb),
                };
                nodes.push(y);
            }
            // A few outputs from the tail.
            let n = nodes.len();
            for i in 0..3.min(n) {
                let out = nodes[n - 1 - i];
                aig.add_output(out);
            }
            aig
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compact_preserves_semantics(aig in random_aig(5, 30), stim in any::<u64>()) {
        let compacted = aig.compact();
        prop_assert!(compacted.num_ands() <= aig.num_ands());
        let input: Vec<bool> = (0..aig.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        prop_assert_eq!(aig.eval_comb(&input), compacted.eval_comb(&input));
    }

    #[test]
    fn aiger_round_trip_preserves_semantics(aig in random_aig(5, 30), stim in any::<u64>()) {
        let text = aiger::to_ascii(&aig);
        let back = aiger::from_ascii(&text).unwrap();
        let input: Vec<bool> = (0..aig.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        prop_assert_eq!(aig.eval_comb(&input), back.eval_comb(&input));
    }

    #[test]
    fn parallel_simulation_matches_scalar(aig in random_aig(5, 30), seed in any::<u64>()) {
        let mut sim = Simulator::new(&aig);
        let patterns: Vec<u64> = (0..aig.num_inputs())
            .map(|i| seed.rotate_left(7 * i as u32 + 1))
            .collect();
        let packed = sim.eval_comb(&patterns);
        for lane in [0usize, 17, 63] {
            let input: Vec<bool> = patterns.iter().map(|p| (p >> lane) & 1 == 1).collect();
            let scalar = aig.eval_comb(&input);
            for (o, &word) in packed.iter().enumerate() {
                prop_assert_eq!((word >> lane) & 1 == 1, scalar[o]);
            }
        }
    }

    #[test]
    fn import_cone_is_faithful(aig in random_aig(4, 20), stim in any::<u16>()) {
        let mut dst = Aig::new();
        let inputs = dst.add_inputs(aig.num_inputs());
        let roots: Vec<_> = aig.outputs().to_vec();
        let images = dst.import_cone(&aig, &roots, &inputs, &[]);
        for img in images {
            dst.add_output(img);
        }
        let input: Vec<bool> = (0..aig.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        prop_assert_eq!(aig.eval_comb(&input), dst.eval_comb(&input));
    }
}
