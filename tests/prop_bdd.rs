#![cfg(feature = "proptest-tests")]

//! Property-based tests of the BDD substrate: canonical operations
//! cross-checked against brute-force evaluation and model counting on
//! random Boolean expressions and random circuits.

use axmc::bdd::{interleaved_order, Manager, NodeId};
use proptest::prelude::*;

/// A random expression tree over `n` variables, encoded as a flat op list
/// (each op references earlier results or variables).
#[derive(Clone, Debug)]
struct Expr {
    n_vars: usize,
    ops: Vec<(u8, u32, u32)>,
}

fn expr(n_vars: usize) -> impl Strategy<Value = Expr> {
    proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..20)
        .prop_map(move |ops| Expr { n_vars, ops })
}

/// Builds the expression in a manager, returning the final node.
fn build_bdd(m: &mut Manager, e: &Expr) -> NodeId {
    let mut nodes: Vec<NodeId> = (0..e.n_vars).map(|i| m.var(i)).collect();
    for &(op, a, b) in &e.ops {
        let fa = nodes[a as usize % nodes.len()];
        let fb = nodes[b as usize % nodes.len()];
        let y = match op {
            0 => m.and(fa, fb),
            1 => m.or(fa, fb),
            2 => m.xor(fa, fb),
            _ => m.not(fa),
        };
        nodes.push(y);
    }
    *nodes.last().expect("nonempty")
}

/// Evaluates the expression directly on booleans.
fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    let mut values: Vec<bool> = assignment.to_vec();
    for &(op, a, b) in &e.ops {
        let fa = values[a as usize % values.len()];
        let fb = values[b as usize % values.len()];
        values.push(match op {
            0 => fa && fb,
            1 => fa || fb,
            2 => fa ^ fb,
            _ => !fa,
        });
    }
    *values.last().expect("nonempty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_eval_matches_direct_eval(e in expr(5)) {
        let mut m = Manager::new(5);
        let f = build_bdd(&mut m, &e);
        for bits in 0..32u32 {
            let assignment: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &assignment), eval_expr(&e, &assignment));
        }
    }

    #[test]
    fn count_sat_matches_enumeration(e in expr(6)) {
        let mut m = Manager::new(6);
        let f = build_bdd(&mut m, &e);
        let mut count = 0u128;
        for bits in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            if eval_expr(&e, &assignment) {
                count += 1;
            }
        }
        prop_assert_eq!(m.count_sat(f), Ok(count));
    }

    #[test]
    fn canonicity_detects_equivalence(e in expr(4)) {
        // Build the same function twice (once with a double negation
        // wrapper); the node ids must coincide.
        let mut m = Manager::new(4);
        let f = build_bdd(&mut m, &e);
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(f, nnf);
        // And the function xor itself is constant false.
        let z = m.xor(f, f);
        prop_assert_eq!(z, NodeId::FALSE);
    }

    #[test]
    fn variable_order_does_not_change_semantics(e in expr(5), perm_seed in any::<u64>()) {
        // Any permutation as the order: eval and count must be invariant.
        let mut order: Vec<usize> = (0..5).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut s = perm_seed | 1;
        for i in (1..5).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        let mut m1 = Manager::new(5);
        let f1 = build_bdd(&mut m1, &e);
        let mut m2 = Manager::new(5).with_order(&order);
        let f2 = build_bdd(&mut m2, &e);
        for bits in [0u32, 7, 13, 21, 31] {
            let assignment: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
            prop_assert_eq!(m1.eval(f1, &assignment), m2.eval(f2, &assignment));
        }
        prop_assert_eq!(m1.count_sat(f1), m2.count_sat(f2));
    }

    #[test]
    fn aig_import_matches_circuit(seed in any::<u64>()) {
        use axmc::circuit::generators;
        // The adder as a whole, imported under the interleaved order.
        let width = 4;
        let adder = generators::ripple_carry_adder(width).to_aig();
        let mut m = Manager::new(2 * width).with_order(&interleaved_order(width));
        let outputs = m.import_aig(&adder).unwrap();
        let x = (seed % 256) as u32;
        let assignment: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
        let sim = adder.eval_comb(&assignment);
        for (k, &f) in outputs.iter().enumerate() {
            prop_assert_eq!(m.eval(f, &assignment), sim[k]);
        }
    }
}
