#![cfg(feature = "proptest-tests")]

//! Property-based tests of the circuit layer: netlist/AIG agreement,
//! compaction, generator correctness at random widths, approximate
//! component error bounds, and CGP chromosome invariants.

use axmc::cgp::Chromosome;
use axmc::circuit::{approx, generators, AreaModel, GateOp, Netlist, Signal};
use axmc_rand::rngs::StdRng;
use axmc_rand::SeedableRng;
use proptest::prelude::*;

/// A random topologically valid netlist.
fn random_netlist() -> impl Strategy<Value = Netlist> {
    (
        1usize..=5,
        proptest::collection::vec((any::<u32>(), any::<u32>(), 0u8..9), 1..25),
        proptest::collection::vec(any::<u32>(), 1..4),
    )
        .prop_map(|(n_in, gates, outs)| {
            let mut nl = Netlist::new(n_in);
            for (a, b, op) in gates {
                let pick = |x: u32, nl: &Netlist| -> Signal {
                    let total = n_in + nl.num_gates() + 2;
                    match x as usize % total {
                        0 => Signal::Const(false),
                        1 => Signal::Const(true),
                        k if k - 2 < n_in => Signal::Input((k - 2) as u32),
                        k => Signal::Gate((k - 2 - n_in) as u32),
                    }
                };
                let sa = pick(a, &nl);
                let sb = pick(b, &nl);
                nl.add_gate(GateOp::ALL[op as usize], sa, sb);
            }
            for o in outs {
                let total = n_in + nl.num_gates();
                let sig = match o as usize % total {
                    k if k < n_in => Signal::Input(k as u32),
                    k => Signal::Gate((k - n_in) as u32),
                };
                nl.add_output(sig);
            }
            nl
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlist_and_aig_agree(nl in random_netlist(), stim in any::<u64>()) {
        let aig = nl.to_aig();
        let input: Vec<bool> = (0..nl.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        prop_assert_eq!(nl.eval(&input), aig.eval_comb(&input));
    }

    #[test]
    fn netlist_compaction_preserves_behavior(nl in random_netlist(), stim in any::<u64>()) {
        let compacted = nl.compact();
        prop_assert!(compacted.num_gates() <= nl.num_gates());
        let input: Vec<bool> = (0..nl.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        prop_assert_eq!(nl.eval(&input), compacted.eval(&input));
    }

    #[test]
    fn area_is_monotone_under_compaction(nl in random_netlist()) {
        let model = AreaModel::nm45();
        // Active-gate area is invariant; total gate count is not.
        prop_assert!((nl.area(&model) - nl.compact().area(&model)).abs() < 1e-9);
    }

    #[test]
    fn adders_are_correct_at_random_widths(width in 1usize..24, a in any::<u64>(), b in any::<u64>()) {
        let mask = if width >= 64 { u64::MAX } else { (1 << width) - 1 };
        let (a, b) = ((a & mask) as u128, (b & mask) as u128);
        let rca = generators::ripple_carry_adder(width);
        prop_assert_eq!(rca.eval_binop(a, b), a + b);
        let csa = generators::carry_select_adder(width, (width / 3).max(1));
        prop_assert_eq!(csa.eval_binop(a, b), a + b);
    }

    #[test]
    fn multipliers_are_correct_at_random_widths(width in 1usize..12, a in any::<u32>(), b in any::<u32>()) {
        let mask = (1u128 << width) - 1;
        let (a, b) = (a as u128 & mask, b as u128 & mask);
        prop_assert_eq!(generators::array_multiplier(width).eval_binop(a, b), a * b);
        prop_assert_eq!(generators::wallace_multiplier(width).eval_binop(a, b), a * b);
    }

    #[test]
    fn truncated_adder_error_bound_holds(width in 2usize..10, cut_frac in 0usize..100, a in any::<u32>(), b in any::<u32>()) {
        let cut = cut_frac % (width + 1);
        let mask = (1u128 << width) - 1;
        let (a, b) = (a as u128 & mask, b as u128 & mask);
        let nl = approx::truncated_adder(width, cut);
        let got = nl.eval_binop(a, b);
        let bound = if cut == 0 { 0 } else { (1u128 << (cut + 1)) - 2 };
        prop_assert!((a + b).abs_diff(got) <= bound);
    }

    #[test]
    fn loa_error_bound_holds(width in 2usize..10, lower_frac in 0usize..100, a in any::<u32>(), b in any::<u32>()) {
        let lower = lower_frac % (width + 1);
        let mask = (1u128 << width) - 1;
        let (a, b) = (a as u128 & mask, b as u128 & mask);
        let nl = approx::lower_or_adder(width, lower);
        let got = nl.eval_binop(a, b);
        let bound = if lower == 0 { 0 } else { 1u128 << (lower + 1) };
        prop_assert!((a + b).abs_diff(got) <= bound);
    }

    #[test]
    fn chromosome_decode_respects_interface(width in 2usize..6, seed in any::<u64>(), steps in 1usize..50) {
        let golden = generators::ripple_carry_adder(width);
        let mut chrom = Chromosome::from_netlist(&golden, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            chrom.mutate(4, &mut rng);
        }
        let nl = chrom.decode();
        prop_assert_eq!(nl.num_inputs(), golden.num_inputs());
        prop_assert_eq!(nl.num_outputs(), golden.num_outputs());
        // Evaluation never panics (topological validity).
        let _ = nl.eval_binop(1, 1);
    }

    #[test]
    fn neutral_mutations_preserve_semantics(width in 2usize..5, seed in any::<u64>()) {
        let golden = generators::ripple_carry_adder(width);
        let base = Chromosome::from_netlist(&golden, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut child = base.clone();
        if !child.mutate(2, &mut rng) {
            // Reported neutral: behavior must be identical everywhere.
            let a = base.decode();
            let b = child.decode();
            for x in 0..(1u128 << width) {
                for y in 0..(1u128 << width) {
                    prop_assert_eq!(a.eval_binop(x, y), b.eval_binop(x, y));
                }
            }
        }
    }
}
