#![cfg(feature = "proptest-tests")]

//! Property-based tests of the error-determination engines: the SAT/BMC
//! answers must match exhaustive ground truth on randomly *mutated*
//! circuits — a much broader space than the hand-written component
//! library.

use axmc::cgp::Chromosome;
use axmc::circuit::{generators, Netlist};
use axmc::core::{exhaustive_stats, CombAnalyzer, SeqAnalyzer};
use axmc::mc::Trace;
use axmc::seq::accumulator;
use axmc_rand::rngs::StdRng;
use axmc_rand::SeedableRng;
use proptest::prelude::*;

/// A random approximate mutant of an exact circuit, produced by CGP
/// mutations on the seeded chromosome (always interface-compatible).
fn mutant(golden: &Netlist, seed: u64, mutations: usize) -> Netlist {
    let mut chrom = Chromosome::from_netlist(golden, 2);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..mutations {
        chrom.mutate(3, &mut rng);
    }
    chrom.decode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sat_wce_equals_exhaustive_on_mutants(seed in any::<u64>(), mutations in 1usize..12) {
        let golden_nl = generators::ripple_carry_adder(5);
        let cand_nl = mutant(&golden_nl, seed, mutations);
        let golden = golden_nl.to_aig();
        let cand = cand_nl.to_aig();
        let exact = exhaustive_stats(&golden, &cand);
        let formal = CombAnalyzer::new(&golden, &cand).worst_case_error().unwrap();
        prop_assert_eq!(formal.value, exact.wce);
    }

    #[test]
    fn sat_bit_flip_equals_exhaustive_on_mutants(seed in any::<u64>(), mutations in 1usize..12) {
        let golden_nl = generators::array_multiplier(3);
        let cand_nl = mutant(&golden_nl, seed, mutations);
        let golden = golden_nl.to_aig();
        let cand = cand_nl.to_aig();
        let exact = exhaustive_stats(&golden, &cand);
        let formal = CombAnalyzer::new(&golden, &cand).bit_flip_error().unwrap();
        prop_assert_eq!(formal.value, exact.bit_flip);
    }

    #[test]
    fn threshold_query_is_consistent_with_wce(seed in any::<u64>()) {
        let golden_nl = generators::ripple_carry_adder(4);
        let cand_nl = mutant(&golden_nl, seed, 6);
        let golden = golden_nl.to_aig();
        let cand = cand_nl.to_aig();
        let analyzer = CombAnalyzer::new(&golden, &cand);
        let wce = analyzer.worst_case_error().unwrap().value;
        prop_assert!(analyzer.check_error_exceeds(wce).unwrap().is_proved());
        if wce > 0 {
            let verdict = analyzer.check_error_exceeds(wce - 1).unwrap();
            prop_assert!(verdict.is_refuted());
        }
    }

    #[test]
    fn sequential_wce_matches_trace_enumeration(seed in any::<u64>()) {
        // 3-bit accumulator with a mutant adder; brute-force all input
        // sequences of length 3 against the BMC answer.
        let width = 3;
        let golden_nl = generators::ripple_carry_adder(width);
        let cand_nl = mutant(&golden_nl, seed, 4);
        let golden = accumulator(&golden_nl, width);
        let apx = accumulator(&cand_nl, width);
        let analyzer = SeqAnalyzer::new(&golden, &apx);
        let horizon = 2;

        let mut brute = 0u128;
        for seq in 0u64..(8 * 8 * 8) {
            let trace = Trace {
                inputs: (0..3)
                    .map(|step| {
                        let v = (seq >> (3 * step)) & 7;
                        (0..width).map(|i| (v >> i) & 1 == 1).collect()
                    })
                    .collect(),
            };
            brute = brute.max(analyzer.trace_error(&trace));
        }
        let formal = analyzer.worst_case_error_at(horizon).unwrap().value;
        prop_assert_eq!(formal, brute);
    }

    #[test]
    fn sampling_never_exceeds_formal_wce(seed in any::<u64>()) {
        let golden_nl = generators::ripple_carry_adder(5);
        let cand_nl = mutant(&golden_nl, seed, 8);
        let golden = golden_nl.to_aig();
        let cand = cand_nl.to_aig();
        let formal = CombAnalyzer::new(&golden, &cand).worst_case_error().unwrap().value;
        let sampled = axmc::core::sampled_stats(&golden, &cand, 300, seed).wce_observed;
        prop_assert!(sampled <= formal);
    }
}
