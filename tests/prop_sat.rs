#![cfg(feature = "proptest-tests")]

//! Property-based tests of the SAT solver: answers cross-checked against
//! brute-force enumeration on random formulas, model validity, assumption
//! semantics and budget behavior.

use axmc::sat::{Budget, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

type Formula = Vec<Vec<i64>>;

/// A random k-CNF over `n` variables; DIMACS-style signed literals.
fn formula(n: i64, max_clauses: usize) -> impl Strategy<Value = Formula> {
    proptest::collection::vec(
        proptest::collection::vec((1..=n, any::<bool>()), 1..=3),
        1..=max_clauses,
    )
    .prop_map(|clauses| {
        clauses
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|(v, neg)| if neg { -v } else { v })
                    .collect()
            })
            .collect()
    })
}

fn brute_force_sat(n: usize, formula: &Formula) -> bool {
    'outer: for assignment in 0u64..(1 << n) {
        for clause in formula {
            let satisfied = clause.iter().any(|&lit| {
                let v = lit.unsigned_abs() as usize - 1;
                let value = (assignment >> v) & 1 == 1;
                value != (lit < 0)
            });
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn load(n: usize, formula: &Formula) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
    for clause in formula {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[l.unsigned_abs() as usize - 1], l < 0))
            .collect();
        solver.add_clause(&lits);
    }
    (solver, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn agrees_with_brute_force(f in formula(10, 60)) {
        let n = 10;
        let expect = brute_force_sat(n, &f);
        let (mut solver, _) = load(n, &f);
        let got = solver.solve();
        prop_assert_eq!(got == SolveResult::Sat, expect);
    }

    #[test]
    fn sat_models_satisfy_every_clause(f in formula(12, 70)) {
        let n = 12;
        let (mut solver, vars) = load(n, &f);
        if solver.solve() == SolveResult::Sat {
            for clause in &f {
                let ok = clause.iter().any(|&l| {
                    let value = solver
                        .model_value(vars[l.unsigned_abs() as usize - 1])
                        .unwrap_or(false);
                    value != (l < 0)
                });
                prop_assert!(ok, "model violates clause {:?}", clause);
            }
        }
    }

    #[test]
    fn assumptions_behave_like_units(f in formula(9, 40), forced in any::<u32>()) {
        // Solving under assumptions must equal solving the formula with
        // those units added — on a fresh solver.
        let n = 9;
        let assumed: Vec<i64> = (0..n)
            .filter(|i| (forced >> i) & 1 == 1)
            .map(|i| if (forced >> (i + 8)) & 1 == 1 { -(i as i64 + 1) } else { i as i64 + 1 })
            .collect();

        let (mut s1, vars1) = load(n, &f);
        let assumptions: Vec<Lit> = assumed
            .iter()
            .map(|&l| Lit::new(vars1[l.unsigned_abs() as usize - 1], l < 0))
            .collect();
        let under_assumptions = s1.solve_with_assumptions(&assumptions);

        let mut f2 = f.clone();
        for &l in &assumed {
            f2.push(vec![l]);
        }
        let (mut s2, _) = load(n, &f2);
        let with_units = s2.solve();
        prop_assert_eq!(under_assumptions, with_units);
        // And the solver is reusable afterwards with the same answer as a
        // fresh one.
        let (mut s3, _) = load(n, &f);
        prop_assert_eq!(s1.solve(), s3.solve());
    }

    #[test]
    fn budget_never_flips_answers(f in formula(10, 60), limit in 1u64..50) {
        let n = 10;
        let expect = brute_force_sat(n, &f);
        let (mut solver, _) = load(n, &f);
        let limited = solver.current_config().with_budget(Budget::unlimited().with_conflicts(limit));
        solver.configure(&limited);
        match solver.solve() {
            SolveResult::Sat => prop_assert!(expect),
            SolveResult::Unsat => prop_assert!(!expect),
            SolveResult::Unknown => {} // allowed under a budget
        }
        // Lifting the budget must produce the definitive answer.
        let unlimited = solver.current_config().with_budget(Budget::unlimited());
        solver.configure(&unlimited);
        prop_assert_eq!(solver.solve() == SolveResult::Sat, expect);
    }

    #[test]
    fn incremental_equals_monolithic(f in formula(10, 40), g in formula(10, 20)) {
        let n = 10;
        // Add f, solve, add g, solve; compare against f ∪ g from scratch.
        let (mut inc, vars) = load(n, &f);
        let _ = inc.solve();
        for clause in &g {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[l.unsigned_abs() as usize - 1], l < 0))
                .collect();
            inc.add_clause(&lits);
        }
        let incremental = inc.solve();
        let mut combined = f.clone();
        combined.extend(g.clone());
        let (mut mono, _) = load(n, &combined);
        prop_assert_eq!(incremental, mono.solve());
    }
}
