#![cfg(feature = "proptest-tests")]

//! Property-based tests of the trace layer: the `Event` JSON codec must
//! round-trip arbitrary field sets, and `Profile` must reconstruct the
//! exact span forest from arbitrarily interleaved multi-worker traces —
//! the shape `axmc report` consumes.

use axmc::obs::profile::Profile;
use axmc::obs::{Event, Value};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Characters that exercise every branch of the JSON string escaper:
/// plain ASCII, quotes, backslashes, control characters, and multi-byte
/// code points.
const PALETTE: &[char] = &[
    'a', 'Z', '0', '_', '.', ' ', '-', '"', '\\', '\n', '\t', '\r', '\u{1}', 'é', 'λ', '🦀',
];

fn text(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    vec(0..PALETTE.len(), len).prop_map(|ixs| ixs.into_iter().map(|i| PALETTE[i]).collect())
}

/// One field value of every scalar kind the codec supports. Floats are
/// derived from an integer so they are always finite (NaN/inf have no
/// JSON form), and negative integers exercise the `I64` arm.
fn value() -> impl Strategy<Value = Value> {
    (0usize..5, any::<i64>(), text(0..6)).prop_map(|(tag, n, s)| match tag {
        0 => Value::from(n.unsigned_abs()),
        1 => Value::from(-(n.unsigned_abs() as i64 >> 1)),
        2 => Value::from(n as f64 / 256.0),
        3 => Value::from(n % 2 == 0),
        _ => Value::from(s),
    })
}

fn event() -> impl Strategy<Value = Event> {
    (text(1..8), vec((text(1..6), value()), 0..8)).prop_map(|(kind, fields)| {
        let mut event = Event::new(kind);
        for (name, value) in fields {
            event = event.field(name, value);
        }
        event
    })
}

/// The push/pop script of a synthetic multi-worker trace: each step
/// either opens a span on one worker or closes that worker's innermost
/// open span.
#[derive(Clone, Debug)]
struct Step {
    worker: usize,
    push: bool,
}

fn script(workers: usize, steps: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Step>> {
    vec((0..workers, any::<bool>()), steps).prop_map(|ops| {
        ops.into_iter()
            .map(|(worker, push)| Step { worker, push })
            .collect()
    })
}

/// Ground truth for one emitted span.
struct Expected {
    parent: u64,
    worker: u64,
    name: String,
    start_us: u64,
    dur_us: u64,
}

/// Plays the script into a `span.start`/`span.end` event stream exactly
/// as the runtime emits it (per-worker stacks, global ids, one shared
/// clock), returning the stream and the ground-truth span table.
fn play(steps: &[Step], workers: usize) -> (Vec<Event>, HashMap<u64, Expected>) {
    let mut events = Vec::new();
    let mut truth: HashMap<u64, Expected> = HashMap::new();
    let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); workers];
    let mut next_id = 1u64;
    let mut clock = 0u64;
    let emit_end =
        |events: &mut Vec<Event>, truth: &mut HashMap<u64, Expected>, id: u64, clock: &mut u64| {
            *clock += 3;
            let span = truth.get_mut(&id).expect("started");
            span.dur_us = *clock - span.start_us;
            events.push(
                Event::new("span.end")
                    .field("span", id)
                    .field("t_us", *clock)
                    .field("dur_us", span.dur_us),
            );
        };
    for step in steps {
        if step.push {
            clock += 3;
            let id = next_id;
            next_id += 1;
            let parent = stacks[step.worker].last().copied().unwrap_or(0);
            let name = format!("op.{}", step.worker);
            truth.insert(
                id,
                Expected {
                    parent,
                    worker: step.worker as u64,
                    name: name.clone(),
                    start_us: clock,
                    dur_us: 0,
                },
            );
            events.push(
                Event::new("span.start")
                    .field("name", name)
                    .field("span", id)
                    .field("parent", parent)
                    .field("worker", step.worker as u64)
                    .field("t_us", clock),
            );
            stacks[step.worker].push(id);
        } else if let Some(id) = stacks[step.worker].pop() {
            emit_end(&mut events, &mut truth, id, &mut clock);
        }
    }
    // Close whatever is still open so every span has an exact duration.
    for stack in &mut stacks {
        while let Some(id) = stack.pop() {
            emit_end(&mut events, &mut truth, id, &mut clock);
        }
    }
    (events, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_json` → `parse_json` is the identity on any event.
    #[test]
    fn event_json_round_trips(event in event()) {
        let line = event.to_json();
        let parsed = Event::parse_json(&line);
        prop_assert!(parsed.is_ok(), "cannot parse {}: {:?}", line, parsed);
        let back = parsed.unwrap();
        prop_assert_eq!(&back, &event, "through {}", line);
        // Parsing is also stable: re-encoding yields the same line.
        prop_assert_eq!(back.to_json(), line);
    }

    /// The profile reconstructed from an interleaved multi-worker trace
    /// matches the generating span table exactly: ids, parents, workers,
    /// durations, and child links.
    #[test]
    fn profile_reconstructs_interleaved_workers(
        workers in 1usize..5,
        steps in script(4, 0..60),
    ) {
        let steps: Vec<Step> = steps
            .into_iter()
            .map(|s| Step { worker: s.worker % workers, push: s.push })
            .collect();
        let (events, truth) = play(&steps, workers);
        let profile = Profile::from_events(events.clone());

        prop_assert_eq!(profile.skipped, 0);
        prop_assert_eq!(profile.spans.len(), truth.len());
        let by_id: HashMap<u64, usize> = profile
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        for (id, expected) in &truth {
            let span = &profile.spans[by_id[id]];
            prop_assert_eq!(span.parent, expected.parent, "span {}", id);
            prop_assert_eq!(span.worker, expected.worker, "span {}", id);
            prop_assert_eq!(&span.name, &expected.name, "span {}", id);
            prop_assert_eq!(span.start_us, expected.start_us, "span {}", id);
            prop_assert_eq!(span.dur_us, expected.dur_us, "span {}", id);
        }
        // Child links mirror the parent fields, and the roots are
        // exactly the parentless spans.
        for (i, span) in profile.spans.iter().enumerate() {
            for &child in &span.children {
                prop_assert_eq!(profile.spans[child].parent, span.id);
            }
            if span.parent == 0 {
                prop_assert!(profile.roots.contains(&i), "span {} not a root", span.id);
            }
        }
        let child_count: usize = profile.spans.iter().map(|s| s.children.len()).sum();
        prop_assert_eq!(child_count + profile.roots.len(), profile.spans.len());

        // The reconstruction is insensitive to the serialization: going
        // through JSONL text yields the identical forest.
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let reparsed = Profile::from_jsonl(&jsonl);
        prop_assert_eq!(reparsed.spans, profile.spans);
        prop_assert_eq!(reparsed.roots, profile.roots);
    }

    /// A truncated trace (tail `span.end`s lost, e.g. a crash) still
    /// reconstructs every started span, closing the unfinished ones at
    /// the last timestamp observed anywhere in the trace.
    #[test]
    fn profile_tolerates_truncated_traces(
        steps in script(3, 4..40),
        cut in 1usize..8,
    ) {
        let (events, truth) = play(&steps, 3);
        if truth.is_empty() {
            return;
        }
        let keep = events.len() - cut.min(events.len() - 1);
        let started: usize = events[..keep]
            .iter()
            .filter(|e| e.kind == "span.start")
            .count();
        let profile = Profile::from_events(events[..keep].to_vec());
        prop_assert_eq!(profile.spans.len(), started);
        let last_t = profile
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        for span in &profile.spans {
            prop_assert!(
                span.start_us + span.dur_us <= last_t,
                "span {} closed past the trace horizon",
                span.id
            );
        }
    }
}
