//! Soundness suite for the static pre-analysis tier (`axmc-absint`).
//!
//! Two non-negotiables from the tier's contract are checked here, across
//! the whole shipped approximate-component library at exhaustively
//! checkable widths:
//!
//! * every static `Proved`/`Refuted` verdict agrees bit for bit with the
//!   SAT backend, the BDD backend, and exhaustive simulation;
//! * `Backend::Auto` with the static tier enabled returns byte-identical
//!   metric values to the solver-only portfolio (tier disabled).
//!
//! The companion property tests (`--features proptest-tests`) establish
//! the same guarantees over *random* circuits: the structural sweep is
//! equisatisfiable (256 random vectors agree pre/post reduction) and the
//! certified interval always brackets the true worst-case error.

use axmc::circuit::{approx, generators};
use axmc::core::exhaustive_stats;
use axmc::{AnalysisError, AnalysisOptions, Backend, CombAnalyzer, EngineKind, Verdict};

/// Every adder pair in the library at a width small enough for an
/// exhaustive ground truth.
fn library_pairs(width: usize) -> Vec<(String, axmc::aig::Aig, axmc::aig::Aig)> {
    let golden = generators::ripple_carry_adder(width).to_aig();
    approx::adder_library(width)
        .into_iter()
        .map(|c| (c.name.clone(), golden.clone(), c.netlist.to_aig()))
        .collect()
}

fn with_backend(backend: Backend, static_tier: bool) -> AnalysisOptions {
    AnalysisOptions::new()
        .with_backend(backend)
        .with_static_tier(static_tier)
}

#[test]
fn static_threshold_verdicts_cross_validate_against_both_solvers() {
    for width in [4usize, 6] {
        for (name, golden, candidate) in library_pairs(width) {
            let truth = exhaustive_stats(&golden, &candidate).wce;
            let thresholds = [
                0u128,
                truth / 2,
                truth.saturating_sub(1),
                truth,
                truth + 1,
                truth.saturating_mul(2) + 1,
            ];
            let static_only = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Static, true));
            let sat = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Sat, false));
            let bdd = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Bdd, false));
            for t in thresholds {
                let verdict = static_only.check_error_exceeds(t).unwrap();
                let sat_v = sat.check_error_exceeds(t).unwrap();
                let bdd_v = bdd.check_error_exceeds(t).unwrap();
                // The solver backends must agree with each other and
                // with the exhaustive ground truth.
                assert_eq!(sat_v.is_refuted(), truth > t, "{name} w{width} t={t} (sat)");
                assert_eq!(bdd_v.is_refuted(), truth > t, "{name} w{width} t={t} (bdd)");
                // A static decision must match them; Interrupted means
                // undecided, which is always allowed.
                match verdict {
                    Verdict::Proved => {
                        assert!(truth <= t, "{name} w{width} t={t}: unsound static Proved")
                    }
                    Verdict::Refuted { witness } => {
                        let g = axmc::aig::bits_to_u128(&golden.eval_comb(&witness));
                        let c = axmc::aig::bits_to_u128(&candidate.eval_comb(&witness));
                        assert!(
                            g.abs_diff(c) > t,
                            "{name} w{width} t={t}: static witness does not replay"
                        );
                    }
                    Verdict::Interrupted { best_so_far } => {
                        assert!(
                            best_so_far.known_low <= truth && truth <= best_so_far.known_high,
                            "{name} w{width} t={t}: certified interval excludes the truth"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn auto_with_static_tier_matches_solver_only_auto() {
    for width in [4usize, 6] {
        for (name, golden, candidate) in library_pairs(width) {
            let tiered = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Auto, true));
            let plain = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Auto, false));
            assert_eq!(
                tiered.worst_case_error().unwrap().value,
                plain.worst_case_error().unwrap().value,
                "{name} w{width} (wce)"
            );
            assert_eq!(
                tiered.bit_flip_error().unwrap().value,
                plain.bit_flip_error().unwrap().value,
                "{name} w{width} (bit flip)"
            );
        }
    }
}

#[test]
fn static_interval_brackets_the_true_error_on_the_library() {
    for width in [4usize, 6, 8] {
        for (name, golden, candidate) in library_pairs(width) {
            let truth = exhaustive_stats(&golden, &candidate).wce;
            let analyzer = CombAnalyzer::new(&golden, &candidate)
                .with_options(with_backend(Backend::Static, true));
            match analyzer.worst_case_error() {
                Ok(report) => {
                    assert_eq!(report.value, truth, "{name} w{width}: static value wrong");
                    assert_eq!(report.engine, EngineKind::Static, "{name} w{width}");
                    assert_eq!(report.sat_calls, 0, "{name} w{width}: a solver ran");
                }
                Err(AnalysisError::Interrupted(p)) => {
                    assert!(
                        p.reason.is_none(),
                        "{name} w{width}: not a static undecided"
                    );
                    assert!(
                        p.known_low <= truth && truth <= p.known_high,
                        "{name} w{width}: interval [{}, {}] excludes truth {truth}",
                        p.known_low,
                        p.known_high
                    );
                }
                Err(other) => panic!("{name} w{width}: {other}"),
            }
        }
    }
}

#[test]
fn identical_pairs_never_touch_a_solver_under_auto() {
    for width in [4usize, 8] {
        let golden = generators::ripple_carry_adder(width).to_aig();
        let copy = golden.clone();
        let report = CombAnalyzer::new(&golden, &copy)
            .with_options(with_backend(Backend::Auto, true))
            .worst_case_error()
            .unwrap();
        assert_eq!(report.value, 0);
        assert_eq!(report.engine, EngineKind::Static);
        assert_eq!(report.sat_calls, 0);
        assert_eq!(report.conflicts, 0);
    }
}
